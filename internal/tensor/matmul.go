package tensor

import "fmt"

// All matrix products reduce to one packed dot-product kernel
// (dotRange in pool.go): operands whose k-axis is not already
// innermost are transposed once into a pooled packing buffer, and the
// kernel then streams both panels contiguously with a 2×4 register
// accumulator block. The *Into variants write into caller-owned
// destinations so steady-state training steps allocate nothing; the
// allocating forms below them are thin compatibility wrappers.

func check2D(t, u *Tensor, op string) {
	if len(t.shape) != 2 || len(u.shape) != 2 {
		panic(fmt.Sprintf("tensor: %s requires 2-D tensors, got %v, %v", op, t.shape, u.shape))
	}
}

func checkDst(dst *Tensor, m, n int, op string) {
	if len(dst.shape) != 2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: %s destination %v, want [%d %d]", op, dst.shape, m, n))
	}
}

// MatMulInto computes dst = t @ u for [m,k] @ [k,n] -> [m,n].
func MatMulInto(dst, t, u *Tensor) *Tensor {
	check2D(t, u, "MatMulInto")
	m, k := t.shape[0], t.shape[1]
	k2, n := u.shape[0], u.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulInto inner dimension mismatch %v @ %v", t.shape, u.shape))
	}
	checkDst(dst, m, n, "MatMulInto")
	mmPacked(dst.data, t.data, u.data, m, k, n, nil, dotOverwrite)
	return dst
}

// MatMulBiasInto computes dst = t @ u + bias, broadcasting the
// length-n bias over rows — the fused linear-layer forward.
func MatMulBiasInto(dst, t, u, bias *Tensor) *Tensor {
	check2D(t, u, "MatMulBiasInto")
	m, k := t.shape[0], t.shape[1]
	k2, n := u.shape[0], u.shape[1]
	if k != k2 || bias.Len() != n {
		panic(fmt.Sprintf("tensor: MatMulBiasInto shapes %v @ %v + %v", t.shape, u.shape, bias.shape))
	}
	checkDst(dst, m, n, "MatMulBiasInto")
	mmPacked(dst.data, t.data, u.data, m, k, n, bias.data, dotBias)
	return dst
}

// mmPacked runs dst = a @ b (a: m×k, b: k×n) by packing bᵀ and
// dispatching the dot kernel.
func mmPacked(dst, a, b []float32, m, k, n int, bias []float32, mode dotMode) {
	pb := getPack(k * n)
	bt := *pb
	packTranspose(bt, b, k, n)
	dispatchDot(dotTask{dst: dst, a: a, bt: bt, bias: bias, k: k, n: n, scale: 1, mode: mode}, m)
	putPack(pb)
}

// PackTransposedInto writes uᵀ ([k,n] → n contiguous panels of length
// k) into dst — the operand layout the dot kernel streams. Callers
// with stable operands (layer weights between optimizer steps) cache
// the result and feed it to MatMulPackedBInto, skipping the per-call
// repack; pair with Tensor.Version to know when to refresh.
func PackTransposedInto(dst []float32, u *Tensor) []float32 {
	if len(u.shape) != 2 {
		panic(fmt.Sprintf("tensor: PackTransposedInto requires a 2-D tensor, got %v", u.shape))
	}
	if len(dst) != u.Len() {
		panic(fmt.Sprintf("tensor: PackTransposedInto destination %d, want %d", len(dst), u.Len()))
	}
	packTranspose(dst, u.data, u.shape[0], u.shape[1])
	return dst
}

// MatMulPackedBInto computes dst = t @ B (+ bias when non-nil) where
// bt is B's packed transpose from PackTransposedInto and n is B's
// column count: [m,k] @ [k,n] -> [m,n] with no per-call packing.
func MatMulPackedBInto(dst, t *Tensor, bt []float32, n int, bias *Tensor) *Tensor {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMulPackedBInto requires a 2-D input, got %v", t.shape))
	}
	m, k := t.shape[0], t.shape[1]
	if len(bt) != k*n {
		panic(fmt.Sprintf("tensor: MatMulPackedBInto packed operand %d, want %d×%d", len(bt), k, n))
	}
	checkDst(dst, m, n, "MatMulPackedBInto")
	mode := dotOverwrite
	var bd []float32
	if bias != nil {
		if bias.Len() != n {
			panic(fmt.Sprintf("tensor: MatMulPackedBInto bias %v, want length %d", bias.shape, n))
		}
		mode = dotBias
		bd = bias.data
	}
	dispatchDot(dotTask{dst: dst.data, a: t.data, bt: bt, bias: bd, k: k, n: n, scale: 1, mode: mode}, m)
	return dst
}

// MatMulTransBInto computes dst = t @ uᵀ for [m,k] @ ([n,k])ᵀ -> [m,n]
// without materializing the transpose: u's layout is already the
// packed panel the dot kernel wants. This is the hot path of attention
// (Q @ Kᵀ) and of input-gradient computation.
func MatMulTransBInto(dst, t, u *Tensor) *Tensor {
	check2D(t, u, "MatMulTransBInto")
	m, k := t.shape[0], t.shape[1]
	n, k2 := u.shape[0], u.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransBInto inner dimension mismatch %v @ %vᵀ", t.shape, u.shape))
	}
	checkDst(dst, m, n, "MatMulTransBInto")
	dispatchDot(dotTask{dst: dst.data, a: t.data, bt: u.data, k: k, n: n, scale: 1, mode: dotOverwrite}, m)
	return dst
}

// MatMulTransAInto computes dst = tᵀ @ u for ([k,m])ᵀ @ [k,n] -> [m,n].
func MatMulTransAInto(dst, t, u *Tensor) *Tensor {
	return matMulTransA(dst, t, u, dotOverwrite)
}

// MatMulTransAAccInto accumulates dst += tᵀ @ u — the weight-gradient
// update dW += xᵀ @ dy, fused so no gradient temporary is allocated.
func MatMulTransAAccInto(dst, t, u *Tensor) *Tensor {
	return matMulTransA(dst, t, u, dotAccumulate)
}

func matMulTransA(dst, t, u *Tensor, mode dotMode) *Tensor {
	check2D(t, u, "MatMulTransAInto")
	k, m := t.shape[0], t.shape[1]
	k2, n := u.shape[0], u.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransAInto inner dimension mismatch %vᵀ @ %v", t.shape, u.shape))
	}
	checkDst(dst, m, n, "MatMulTransAInto")
	pa := getPack(k * m)
	at := *pa
	packTranspose(at, t.data, k, m)
	pb := getPack(k * n)
	bt := *pb
	packTranspose(bt, u.data, k, n)
	dispatchDot(dotTask{dst: dst.data, a: at, bt: bt, k: k, n: n, scale: 1, mode: mode}, m)
	putPack(pb)
	putPack(pa)
	return dst
}

// --- batched (head-major) products over rank-3 tensors ---

func checkBatched(dst, t, u *Tensor, op string) (b, m, k, k2, n int) {
	if len(t.shape) != 3 || len(u.shape) != 3 || len(dst.shape) != 3 ||
		t.shape[0] != u.shape[0] || dst.shape[0] != t.shape[0] {
		panic(fmt.Sprintf("tensor: %s shapes %v, %v -> %v", op, t.shape, u.shape, dst.shape))
	}
	return t.shape[0], t.shape[1], t.shape[2], u.shape[1], u.shape[2]
}

// BatchedMatMulInto computes dst[i] = t[i] @ u[i] batchwise:
// [b,m,k] @ [b,k,n] -> [b,m,n].
func BatchedMatMulInto(dst, t, u *Tensor) *Tensor {
	b, m, k, k2, n := checkBatched(dst, t, u, "BatchedMatMulInto")
	if k != k2 || dst.shape[1] != m || dst.shape[2] != n {
		panic(fmt.Sprintf("tensor: BatchedMatMulInto shapes %v @ %v -> %v", t.shape, u.shape, dst.shape))
	}
	pb := getPack(b * k * n)
	bt := *pb
	packBatched(bt, u.data, b, k, n)
	dispatchDotBatched(batchedDotTask{
		t: dotTask{k: k, n: n, scale: 1, mode: dotOverwrite}, m: m,
		dst: dst.data, a: t.data, bt: bt,
		dstStride: m * n, aStride: m * k, btStride: k * n,
	}, b)
	putPack(pb)
	return dst
}

// BatchedMatMulTransBScaledInto computes dst[i] = scale·(t[i] @ u[i]ᵀ)
// batchwise: [b,m,k] @ ([b,n,k])ᵀ -> [b,m,n]. With scale = 1/√d this
// is the fused attention-score kernel for all heads at once.
func BatchedMatMulTransBScaledInto(dst, t, u *Tensor, scale float32) *Tensor {
	b, m, k, n, k2 := checkBatched(dst, t, u, "BatchedMatMulTransBScaledInto")
	if k != k2 || dst.shape[1] != m || dst.shape[2] != n {
		panic(fmt.Sprintf("tensor: BatchedMatMulTransBScaledInto shapes %v @ %vᵀ -> %v", t.shape, u.shape, dst.shape))
	}
	dispatchDotBatched(batchedDotTask{
		t: dotTask{k: k, n: n, scale: scale, mode: dotOverwrite}, m: m,
		dst: dst.data, a: t.data, bt: u.data,
		dstStride: m * n, aStride: m * k, btStride: n * k,
	}, b)
	return dst
}

// BatchedMatMulTransAInto computes dst[i] = t[i]ᵀ @ u[i] batchwise:
// ([b,k,m])ᵀ @ [b,k,n] -> [b,m,n].
func BatchedMatMulTransAInto(dst, t, u *Tensor) *Tensor {
	b, k, m, k2, n := checkBatched(dst, t, u, "BatchedMatMulTransAInto")
	if k != k2 || dst.shape[1] != m || dst.shape[2] != n {
		panic(fmt.Sprintf("tensor: BatchedMatMulTransAInto shapes %vᵀ @ %v -> %v", t.shape, u.shape, dst.shape))
	}
	pa := getPack(b * k * m)
	at := *pa
	pb := getPack(b * k * n)
	bt := *pb
	packBatched(at, t.data, b, k, m)
	packBatched(bt, u.data, b, k, n)
	dispatchDotBatched(batchedDotTask{
		t: dotTask{k: k, n: n, scale: 1, mode: dotOverwrite}, m: m,
		dst: dst.data, a: at, bt: bt,
		dstStride: m * n, aStride: m * k, btStride: k * n,
	}, b)
	putPack(pb)
	putPack(pa)
	return dst
}

// --- allocating compatibility wrappers ---

// MatMul returns t @ u for 2-D tensors [m,k] @ [k,n] -> [m,n].
func MatMul(t, u *Tensor) *Tensor {
	check2D(t, u, "MatMul")
	return MatMulInto(New(t.shape[0], u.shape[1]), t, u)
}

// MatMulTransB returns t @ uᵀ for [m,k] @ ([n,k])ᵀ -> [m,n].
func MatMulTransB(t, u *Tensor) *Tensor {
	check2D(t, u, "MatMulTransB")
	return MatMulTransBInto(New(t.shape[0], u.shape[0]), t, u)
}

// MatMulTransA returns tᵀ @ u for ([k,m])ᵀ @ [k,n] -> [m,n].
func MatMulTransA(t, u *Tensor) *Tensor {
	check2D(t, u, "MatMulTransA")
	return MatMulTransAInto(New(t.shape[1], u.shape[1]), t, u)
}

// BatchedMatMul multiplies two 3-D tensors batchwise:
// [b,m,k] @ [b,k,n] -> [b,m,n].
func BatchedMatMul(t, u *Tensor) *Tensor {
	if len(t.shape) != 3 || len(u.shape) != 3 {
		panic(fmt.Sprintf("tensor: BatchedMatMul shapes %v @ %v", t.shape, u.shape))
	}
	return BatchedMatMulInto(New(t.shape[0], t.shape[1], u.shape[2]), t, u)
}

// MatMulFLOPs returns the floating-point operation count of an
// [m,k]@[k,n] product (2mkn: one multiply and one add per term).
func MatMulFLOPs(m, k, n int) int64 {
	return 2 * int64(m) * int64(k) * int64(n)
}
