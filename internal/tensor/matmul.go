package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// matmulParallelThreshold is the minimum number of multiply-adds below
// which MatMul stays single-threaded; goroutine fan-out costs more than
// it saves on tiny matrices.
const matmulParallelThreshold = 1 << 16

// MatMul returns t @ u for 2-D tensors [m,k] @ [k,n] -> [m,n]. Large
// products are computed by a pool of goroutines over row blocks.
func MatMul(t, u *Tensor) *Tensor {
	if len(t.shape) != 2 || len(u.shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires 2-D tensors, got %v @ %v", t.shape, u.shape))
	}
	m, k := t.shape[0], t.shape[1]
	k2, n := u.shape[0], u.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v @ %v", t.shape, u.shape))
	}
	out := New(m, n)
	matmulInto(out.data, t.data, u.data, m, k, n)
	return out
}

// MatMulTransB returns t @ uᵀ for [m,k] @ ([n,k])ᵀ -> [m,n] without
// materializing the transpose. This is the hot path of attention
// (Q @ Kᵀ) and of weight-gradient computation.
func MatMulTransB(t, u *Tensor) *Tensor {
	if len(t.shape) != 2 || len(u.shape) != 2 {
		panic("tensor: MatMulTransB requires 2-D tensors")
	}
	m, k := t.shape[0], t.shape[1]
	n, k2 := u.shape[0], u.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dimension mismatch %v @ %vᵀ", t.shape, u.shape))
	}
	out := New(m, n)
	work := func(r0, r1 int) {
		for r := r0; r < r1; r++ {
			tr := t.data[r*k : (r+1)*k]
			or := out.data[r*n : (r+1)*n]
			for c := 0; c < n; c++ {
				uc := u.data[c*k : (c+1)*k]
				var acc float32
				for i := range tr {
					acc += tr[i] * uc[i]
				}
				or[c] = acc
			}
		}
	}
	parallelRows(m, m*k*n, work)
	return out
}

// MatMulTransA returns tᵀ @ u for ([k,m])ᵀ @ [k,n] -> [m,n] without
// materializing the transpose. This is the weight-gradient path
// dW = xᵀ @ dy.
func MatMulTransA(t, u *Tensor) *Tensor {
	if len(t.shape) != 2 || len(u.shape) != 2 {
		panic("tensor: MatMulTransA requires 2-D tensors")
	}
	k, m := t.shape[0], t.shape[1]
	k2, n := u.shape[0], u.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dimension mismatch %vᵀ @ %v", t.shape, u.shape))
	}
	out := New(m, n)
	// out[r,c] = sum_i t[i,r]*u[i,c]; iterate i outer for streaming
	// access, parallelized over output row blocks.
	work := func(r0, r1 int) {
		for i := 0; i < k; i++ {
			ti := t.data[i*m : (i+1)*m]
			ui := u.data[i*n : (i+1)*n]
			for r := r0; r < r1; r++ {
				v := ti[r]
				if v == 0 {
					continue
				}
				or := out.data[r*n : (r+1)*n]
				for c := 0; c < n; c++ {
					or[c] += v * ui[c]
				}
			}
		}
	}
	parallelRows(m, m*k*n, work)
	return out
}

// matmulInto computes out = a @ b with a: m×k, b: k×n. It uses an
// ikj loop order so the inner loop streams both b and out rows.
func matmulInto(out, a, b []float32, m, k, n int) {
	work := func(r0, r1 int) {
		for r := r0; r < r1; r++ {
			ar := a[r*k : (r+1)*k]
			or := out[r*n : (r+1)*n]
			for i, av := range ar {
				if av == 0 {
					continue
				}
				bi := b[i*n : (i+1)*n]
				for c := range bi {
					or[c] += av * bi[c]
				}
			}
		}
	}
	parallelRows(m, m*k*n, work)
}

// parallelRows splits [0,m) row ranges across GOMAXPROCS workers when
// the operation is large enough to amortize goroutine startup.
func parallelRows(m, flops int, work func(r0, r1 int)) {
	workers := runtime.GOMAXPROCS(0)
	if flops < matmulParallelThreshold || workers == 1 || m == 1 {
		work(0, m)
		return
	}
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		r0 := w * chunk
		if r0 >= m {
			break
		}
		r1 := min(r0+chunk, m)
		wg.Add(1)
		go func(r0, r1 int) {
			defer wg.Done()
			work(r0, r1)
		}(r0, r1)
	}
	wg.Wait()
}

// BatchedMatMul multiplies two 3-D tensors batchwise:
// [b,m,k] @ [b,k,n] -> [b,m,n].
func BatchedMatMul(t, u *Tensor) *Tensor {
	if len(t.shape) != 3 || len(u.shape) != 3 || t.shape[0] != u.shape[0] {
		panic(fmt.Sprintf("tensor: BatchedMatMul shapes %v @ %v", t.shape, u.shape))
	}
	b, m, k := t.shape[0], t.shape[1], t.shape[2]
	k2, n := u.shape[1], u.shape[2]
	if k != k2 {
		panic(fmt.Sprintf("tensor: BatchedMatMul inner dimension mismatch %v @ %v", t.shape, u.shape))
	}
	out := New(b, m, n)
	for i := 0; i < b; i++ {
		matmulInto(out.data[i*m*n:(i+1)*m*n], t.data[i*m*k:(i+1)*m*k], u.data[i*k*n:(i+1)*k*n], m, k, n)
	}
	return out
}

// MatMulFLOPs returns the floating-point operation count of an
// [m,k]@[k,n] product (2mkn: one multiply and one add per term).
func MatMulFLOPs(m, k, n int) int64 {
	return 2 * int64(m) * int64(k) * int64(n)
}
