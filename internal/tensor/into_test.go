package tensor

import (
	"math"
	"testing"
)

// naiveMatMul is the float64-accumulating reference all matmul
// kernels are checked against.
func naiveMatMul(t, u *Tensor) *Tensor {
	m, k := t.Dim(0), t.Dim(1)
	n := u.Dim(1)
	out := New(m, n)
	for r := 0; r < m; r++ {
		for c := 0; c < n; c++ {
			var s float64
			for i := 0; i < k; i++ {
				s += float64(t.Data()[r*k+i]) * float64(u.Data()[i*n+c])
			}
			out.Data()[r*n+c] = float32(s)
		}
	}
	return out
}

func naiveTranspose(t *Tensor) *Tensor {
	r, c := t.Dim(0), t.Dim(1)
	out := New(c, r)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			out.Data()[j*r+i] = t.Data()[i*c+j]
		}
	}
	return out
}

func requireClose(t *testing.T, got, want *Tensor, what string) {
	t.Helper()
	if !AllClose(got, want, 1e-5, 1e-5) {
		t.Fatalf("%s: max diff %g", what, MaxDiff(got, want))
	}
}

// TestMatMulIntoParity exercises every matmul kernel — both the
// vector and the scalar path — against the naive reference over
// shapes chosen to hit the 2×4 blocks and all remainder cases (odd
// rows, odd columns, k below and above one vector, non-multiple-of-8
// k for the assembly tail).
func TestMatMulIntoParity(t *testing.T) {
	rng := NewRNG(101)
	shapes := [][3]int{
		{1, 1, 1}, {2, 3, 4}, {3, 5, 7}, {4, 8, 4}, {5, 16, 9},
		{7, 13, 11}, {8, 17, 12}, {16, 32, 16}, {9, 40, 21}, {33, 65, 29},
	}
	defer func(v bool) { useFMA = v }(useFMA)
	for _, vec := range []bool{false, useFMA} {
		useFMA = vec
		for _, s := range shapes {
			m, k, n := s[0], s[1], s[2]
			a := Randn(rng, 1, m, k)
			b := Randn(rng, 1, k, n)
			want := naiveMatMul(a, b)

			requireClose(t, MatMulInto(New(m, n), a, b), want, "MatMulInto")

			bias := Randn(rng, 1, n)
			wantBias := AddRowVector(want, bias)
			requireClose(t, MatMulBiasInto(New(m, n), a, b, bias), wantBias, "MatMulBiasInto")

			bT := naiveTranspose(b) // [n, k]
			requireClose(t, MatMulTransBInto(New(m, n), a, bT), want, "MatMulTransBInto")

			aT := naiveTranspose(a) // [k, m]
			requireClose(t, MatMulTransAInto(New(m, n), aT, b), want, "MatMulTransAInto")

			acc := Randn(rng, 1, m, n)
			wantAcc := Add(acc, want)
			requireClose(t, MatMulTransAAccInto(acc.Clone(), aT, b), wantAcc, "MatMulTransAAccInto")
		}
	}
}

// TestBatchedMatMulIntoParity checks the head-major batched kernels
// against per-batch naive products.
func TestBatchedMatMulIntoParity(t *testing.T) {
	rng := NewRNG(102)
	defer func(v bool) { useFMA = v }(useFMA)
	for _, vec := range []bool{false, useFMA} {
		useFMA = vec
		for _, s := range [][4]int{{1, 2, 3, 4}, {3, 5, 7, 6}, {4, 8, 16, 8}, {2, 9, 33, 5}} {
			bn, m, k, n := s[0], s[1], s[2], s[3]
			a := Randn(rng, 1, bn, m, k)
			b := Randn(rng, 1, bn, k, n)
			got := BatchedMatMulInto(New(bn, m, n), a, b)
			gotTB := New(bn, m, n)
			var gotTA *Tensor
			for i := 0; i < bn; i++ {
				ai := FromSlice(a.Data()[i*m*k:(i+1)*m*k], m, k)
				bi := FromSlice(b.Data()[i*k*n:(i+1)*k*n], k, n)
				want := naiveMatMul(ai, bi)
				gi := FromSlice(got.Data()[i*m*n:(i+1)*m*n], m, n)
				requireClose(t, gi, want, "BatchedMatMulInto")
			}
			// TransB: u laid out [bn, n, k].
			u := Randn(rng, 1, bn, n, k)
			scale := float32(0.37)
			BatchedMatMulTransBScaledInto(gotTB, a, u, scale)
			for i := 0; i < bn; i++ {
				ai := FromSlice(a.Data()[i*m*k:(i+1)*m*k], m, k)
				ui := FromSlice(u.Data()[i*n*k:(i+1)*n*k], n, k)
				want := Scale(naiveMatMul(ai, naiveTranspose(ui)), scale)
				gi := FromSlice(gotTB.Data()[i*m*n:(i+1)*m*n], m, n)
				requireClose(t, gi, want, "BatchedMatMulTransBScaledInto")
			}
			// TransA: t laid out [bn, k, m], u [bn, k, n] -> [bn, m, n].
			ta := Randn(rng, 1, bn, k, m)
			gotTA = BatchedMatMulTransAInto(New(bn, m, n), ta, b)
			for i := 0; i < bn; i++ {
				ti := FromSlice(ta.Data()[i*k*m:(i+1)*k*m], k, m)
				bi := FromSlice(b.Data()[i*k*n:(i+1)*k*n], k, n)
				want := naiveMatMul(naiveTranspose(ti), bi)
				gi := FromSlice(gotTA.Data()[i*m*n:(i+1)*m*n], m, n)
				requireClose(t, gi, want, "BatchedMatMulTransAInto")
			}
		}
	}
}

// TestElementwiseIntoParity checks the destination-passing elementwise
// and shape kernels against their allocating references.
func TestElementwiseIntoParity(t *testing.T) {
	rng := NewRNG(103)
	x := Randn(rng, 1, 7, 13)
	y := Randn(rng, 1, 7, 13)

	requireClose(t, AddInto(New(7, 13), x, y), Add(x, y), "AddInto")

	sm := SoftmaxInto(New(7, 13), x)
	requireClose(t, sm, Softmax(x), "SoftmaxInto")
	// In-place softmax matches.
	xc := x.Clone()
	SoftmaxInto(xc, xc)
	requireClose(t, xc, sm, "SoftmaxInto in place")
	// Rows sum to one.
	for r := 0; r < 7; r++ {
		var s float64
		for _, v := range sm.Row(r) {
			s += float64(v)
		}
		if math.Abs(s-1) > 1e-5 {
			t.Fatalf("softmax row %d sums to %v", r, s)
		}
	}

	dy := Randn(rng, 1, 7, 13)
	requireClose(t, SoftmaxBackwardInto(New(7, 13), sm, dy), SoftmaxBackward(sm, dy), "SoftmaxBackwardInto")

	requireClose(t, GELUInto(New(7, 13), x), GELU(x), "GELUInto")
	requireClose(t, GELUBackwardInto(New(7, 13), x, dy), GELUBackward(x, dy), "GELUBackwardInto")

	// Cached-tanh GELU matches the direct form exactly.
	g := New(7, 13)
	th := New(7, 13)
	requireClose(t, GELUCachedInto(g, th, x), GELU(x), "GELUCachedInto")
	requireClose(t, GELUBackwardCachedInto(New(7, 13), x, th, dy), GELUBackward(x, dy), "GELUBackwardCachedInto")

	v := Randn(rng, 1, 13)
	requireClose(t, AddRowVectorInto(New(7, 13), x, v), AddRowVector(x, v), "AddRowVectorInto")

	acc := Randn(rng, 1, 13)
	wantSum := Add(acc, SumRows(x).Reshape(13))
	requireClose(t, SumRowsAccInto(acc.Clone(), x), wantSum.Reshape(13), "SumRowsAccInto")
}

// TestConcatSplitHeadsRoundTrip proves ConcatInto matches Concat and
// that SplitHeadsInto/MergeHeadsInto are exact inverses matching the
// Split/Concat reference path.
func TestConcatSplitHeadsRoundTrip(t *testing.T) {
	rng := NewRNG(104)
	parts := []*Tensor{Randn(rng, 1, 5, 3), Randn(rng, 1, 5, 4), Randn(rng, 1, 5, 2)}
	want := Concat(1, parts...)
	got := ConcatInto(New(5, 9), 1, parts...)
	requireClose(t, got, want, "ConcatInto")

	const heads = 4
	x := Randn(rng, 1, 6, 8*heads)
	hm := SplitHeadsInto(New(heads, 6, 8), x, heads)
	// Reference: Split along dim 1.
	ref := Split(x, 1, heads)
	for h := 0; h < heads; h++ {
		slab := FromSlice(hm.Data()[h*6*8:(h+1)*6*8], 6, 8)
		requireClose(t, slab, ref[h], "SplitHeadsInto vs Split")
	}
	back := MergeHeadsInto(New(6, 8*heads), hm, heads)
	requireClose(t, back, x, "MergeHeads(SplitHeads) identity")
}

// TestWorkspaceReuse verifies the size-bucketed pool recycles
// buffers: a Get after Put of the same size class returns the pooled
// tensor rather than allocating.
func TestWorkspaceReuse(t *testing.T) {
	ws := NewWorkspace()
	a := ws.Get(16, 16)
	data := &a.Data()[0]
	ws.Put(a)
	b := ws.Get(4, 33) // 132 <= 256: same size class as 16*16
	if &b.Data()[0] != data {
		t.Error("workspace did not reuse pooled buffer within a size class")
	}
	if b.Dim(0) != 4 || b.Dim(1) != 33 {
		t.Errorf("workspace returned wrong shape %v", b.Shape())
	}
	ws.Put(b)
	if n, _ := ws.Stats(); n != 1 {
		t.Errorf("pool holds %d tensors, want 1", n)
	}
	z := ws.GetZeroed(8, 8)
	for _, v := range z.Data() {
		if v != 0 {
			t.Fatal("GetZeroed returned dirty buffer")
		}
	}
}

// TestEnsureReuses verifies Ensure keeps storage when capacity allows
// and allocates otherwise.
func TestEnsureReuses(t *testing.T) {
	a := New(8, 8)
	p := &a.Data()[0]
	b := Ensure(a, 4, 16)
	if &b.Data()[0] != p {
		t.Error("Ensure reallocated despite sufficient capacity")
	}
	c := Ensure(b, 32, 32)
	if &c.Data()[0] == p {
		t.Error("Ensure kept undersized storage")
	}
}
