package tensor

import (
	"fmt"
	"sync"

	"orbit/internal/quant"
)

// Quantized re-exports the block-quantized weight container so callers
// layered on tensor (infer, ckpt, the serving CLI) need not import
// internal/quant directly. See that package for the int8/Q4_0 formats.
type Quantized = quant.Quantized

// QuantKind selects a quantized storage format.
type QuantKind = quant.Kind

// Quantized storage formats (scale per 32-element block).
const (
	QuantInt8 = quant.Int8
	QuantQ4   = quant.Q4_0
)

// QuantizeTensor compresses a 2-D weight [k, n] into a panel-major
// quantized container whose panels are the dot kernel's operand
// layout.
func QuantizeTensor(w *Tensor, kind QuantKind) *Quantized {
	if len(w.shape) != 2 {
		panic(fmt.Sprintf("tensor: QuantizeTensor requires a 2-D weight, got %v", w.shape))
	}
	return quant.Quantize(w.data, w.shape[0], w.shape[1], kind)
}

// DequantizeTensor reconstructs the full-precision [rows, cols] weight.
func DequantizeTensor(q *Quantized) *Tensor {
	t := New(q.Rows(), q.Cols())
	q.DequantizeInto(t.data)
	return t
}

// quantDotTask is one dequant-fused matmul dispatch: dst = a·W (+bias)
// where W lives in a quantized container. The Job item space is groups
// of four output columns — the same global 4-column grouping dotRange
// uses — so each quantized panel is dequantized exactly once per
// dispatch, into the tile's own scratch segment, and every output
// element's reduction runs through the identical micro-kernel sequence
// as the float32 packed matmul. Results are therefore bit-identical to
// MatMulPackedBInto over the dequantized weight, at any worker count.
type quantDotTask struct {
	dst, a, bias, scratch []float32
	q                     *Quantized
	m, k, n               int
	mode                  dotMode
}

var quantDotTaskPool = sync.Pool{New: func() any { return new(quantDotTask) }}

// Tile implements Job over 4-column groups.
func (t *quantDotTask) Tile(tile, g0, g1 int) {
	k := t.k
	seg := t.scratch[tile*4*k : (tile+1)*4*k]
	for g := g0; g < g1; g++ {
		c := g * 4
		cw := t.n - c
		if cw > 4 {
			cw = 4
		}
		panels := seg[:cw*k]
		t.q.DequantPanelsInto(panels, c, c+cw)
		if cw == 4 {
			t.group4(panels, c)
		} else {
			// Trailing columns take the scalar single-column path, like
			// dotRange's own n%4 tail.
			for j := 0; j < cw; j++ {
				t.col1(panels[j*k:(j+1)*k], c+j)
			}
		}
	}
}

// group4 computes all m rows of one full 4-column group from the
// dequantized panels, mirroring dotRange's register blocking (2×4
// blocks, AVX2+FMA assembly with the scalar tail, pure scalar
// fallback) so the float op order matches the f32 kernel exactly.
func (t *quantDotTask) group4(panels []float32, c int) {
	k, n, m := t.k, t.n, t.m
	a := t.a
	b0 := panels[0:k]
	b1 := panels[k : 2*k][:len(b0)]
	b2 := panels[2*k : 3*k][:len(b0)]
	b3 := panels[3*k : 4*k][:len(b0)]
	vector := useFMA && k >= 8
	r := 0
	for ; r+2 <= m; r += 2 {
		a0 := a[r*k : r*k+k][:len(b0)]
		a1 := a[(r+1)*k : (r+1)*k+k][:len(b0)]
		var s00, s01, s02, s03, s10, s11, s12, s13 float32
		if vector {
			var sums [8]float32
			dotBlock2x4(&a0[0], &a1[0], &b0[0], k, &sums)
			s00, s01, s02, s03 = sums[0], sums[1], sums[2], sums[3]
			s10, s11, s12, s13 = sums[4], sums[5], sums[6], sums[7]
			for i := k &^ 7; i < k; i++ {
				av0, av1 := a0[i], a1[i]
				bv0, bv1, bv2, bv3 := b0[i], b1[i], b2[i], b3[i]
				s00 += av0 * bv0
				s01 += av0 * bv1
				s02 += av0 * bv2
				s03 += av0 * bv3
				s10 += av1 * bv0
				s11 += av1 * bv1
				s12 += av1 * bv2
				s13 += av1 * bv3
			}
		} else {
			for i, av0 := range a0 {
				av1 := a1[i]
				bv0, bv1, bv2, bv3 := b0[i], b1[i], b2[i], b3[i]
				s00 += av0 * bv0
				s01 += av0 * bv1
				s02 += av0 * bv2
				s03 += av0 * bv3
				s10 += av1 * bv0
				s11 += av1 * bv1
				s12 += av1 * bv2
				s13 += av1 * bv3
			}
		}
		o0 := t.dst[r*n+c : r*n+c+4]
		o1 := t.dst[(r+1)*n+c : (r+1)*n+c+4]
		switch t.mode {
		case dotOverwrite:
			o0[0], o0[1], o0[2], o0[3] = s00, s01, s02, s03
			o1[0], o1[1], o1[2], o1[3] = s10, s11, s12, s13
		case dotBias:
			b := t.bias[c : c+4]
			o0[0], o0[1], o0[2], o0[3] = b[0]+s00, b[1]+s01, b[2]+s02, b[3]+s03
			o1[0], o1[1], o1[2], o1[3] = b[0]+s10, b[1]+s11, b[2]+s12, b[3]+s13
		}
	}
	for ; r < m; r++ {
		ar := a[r*k : r*k+k][:len(b0)]
		var s0, s1, s2, s3 float32
		if vector {
			var sums [4]float32
			dotBlock1x4(&ar[0], &b0[0], k, &sums)
			s0, s1, s2, s3 = sums[0], sums[1], sums[2], sums[3]
			for i := k &^ 7; i < k; i++ {
				av := ar[i]
				s0 += av * b0[i]
				s1 += av * b1[i]
				s2 += av * b2[i]
				s3 += av * b3[i]
			}
		} else {
			for i, av := range ar {
				s0 += av * b0[i]
				s1 += av * b1[i]
				s2 += av * b2[i]
				s3 += av * b3[i]
			}
		}
		o := t.dst[r*n+c : r*n+c+4]
		switch t.mode {
		case dotOverwrite:
			o[0], o[1], o[2], o[3] = s0, s1, s2, s3
		case dotBias:
			b := t.bias[c : c+4]
			o[0], o[1], o[2], o[3] = b[0]+s0, b[1]+s1, b[2]+s2, b[3]+s3
		}
	}
}

// col1 computes one trailing column for all rows with the plain scalar
// reduction.
func (t *quantDotTask) col1(panel []float32, c int) {
	k, n := t.k, t.n
	for r := 0; r < t.m; r++ {
		ar := t.a[r*k : r*k+k][:len(panel)]
		var s float32
		for i, av := range ar {
			s += av * panel[i]
		}
		switch t.mode {
		case dotOverwrite:
			t.dst[r*n+c] = s
		case dotBias:
			t.dst[r*n+c] = t.bias[c] + s
		}
	}
}

// MatMulQuantInto computes dst = t·W (+ bias) where W is a quantized
// [k, n] weight, fusing block dequantization into the packed dot
// kernel: each tile dequantizes its panels into pooled scratch and
// streams them through the same AVX2/scalar micro-kernel as the f32
// path. The steady state allocates nothing and the result is
// bit-identical to MatMulPackedBInto over the dequantized weight at
// any worker count.
func MatMulQuantInto(dst, t *Tensor, q *Quantized, bias *Tensor) *Tensor {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMulQuantInto requires a 2-D input, got %v", t.shape))
	}
	m, k := t.shape[0], t.shape[1]
	if k != q.Rows() {
		panic(fmt.Sprintf("tensor: MatMulQuantInto inner dimension %d, quantized weight has %d rows", k, q.Rows()))
	}
	n := q.Cols()
	checkDst(dst, m, n, "MatMulQuantInto")
	mode := dotOverwrite
	var bd []float32
	if bias != nil {
		if bias.Len() != n {
			panic(fmt.Sprintf("tensor: MatMulQuantInto bias %v, want length %d", bias.shape, n))
		}
		mode = dotBias
		bd = bias.data
	}
	groups := (n + 3) / 4
	tiles := NumTiles(groups)
	scratch := getPack(tiles * 4 * k)
	qt := quantDotTaskPool.Get().(*quantDotTask)
	*qt = quantDotTask{dst: dst.data, a: t.data, bias: bd, scratch: *scratch, q: q, m: m, k: k, n: n, mode: mode}
	ParallelFor(groups, m*k*n, qt)
	*qt = quantDotTask{}
	quantDotTaskPool.Put(qt)
	putPack(scratch)
	return dst
}
