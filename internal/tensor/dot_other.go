//go:build !amd64

package tensor

// Non-amd64 builds always take the portable scalar kernel. (A var so
// the cross-path parity tests compile everywhere; it is never set true
// off amd64.)
var useFMA = false

func dotBlock2x4(a0, a1, b *float32, k int, sums *[8]float32) {
	panic("tensor: vector kernel unavailable")
}

func dotBlock1x4(a0, b *float32, k int, sums *[4]float32) {
	panic("tensor: vector kernel unavailable")
}
