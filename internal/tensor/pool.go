package tensor

import (
	"runtime"
	"sync"
)

// This file holds the packed dot-product kernel — the oldest client
// of the worker pool, which parallel.go has since generalized into
// the ParallelFor/Job runtime every hot kernel (batched attention
// products, softmax/GELU, LayerNorm, FFT, AFNO, optimizer updates)
// dispatches through. The dot kernel's single-matrix and batched
// (head-major) dispatchers both live here: a dotTask is a Job whose
// items are output rows, and a batchedDotTask flattens the
// (batch, row) space so all B·H heads of an attention product share
// one fixed tile decomposition. Tile ownership is fixed (parallel.go)
// and each output row's reduction sequence never depends on how rows
// are grouped, so results are bit-identical at any worker count.

// dotMode selects how the micro-kernel writes its register
// accumulators back to the destination.
type dotMode uint8

const (
	dotOverwrite  dotMode = iota // dst[r,c] = scale·s
	dotAccumulate                // dst[r,c] += scale·s
	dotBias                      // dst[r,c] = bias[c] + scale·s
)

// dotTask is one packed-dot-product kernel invocation: compute
// dst[r,c] ← op(Σ_i a[r,i]·bt[c,i]). Dispatches borrow a pooled
// instance so the steady state allocates nothing.
type dotTask struct {
	dst, a, bt, bias []float32
	k, n             int
	scale            float32
	mode             dotMode
}

// Tile implements Job over output rows.
func (t *dotTask) Tile(_, r0, r1 int) { dotRange(t, r0, r1) }

// dotTaskPool recycles the boxed dotTask a parallel dispatch shares
// across its tiles.
var dotTaskPool = sync.Pool{New: func() any { return new(dotTask) }}

// dispatchDot runs a dot task over m rows, splitting it across the
// worker pool when the arithmetic is large enough to amortize handoff.
func dispatchDot(t dotTask, m int) {
	if m == 1 || m*t.k*t.n < parallelThreshold || runtime.GOMAXPROCS(0) == 1 {
		dotRange(&t, 0, m)
		return
	}
	dt := dotTaskPool.Get().(*dotTask)
	*dt = t
	forkTiles(m, NumTiles(m), dt)
	*dt = dotTask{}
	dotTaskPool.Put(dt)
}

// batchedDotTask runs the dot kernel over the flattened (batch, row)
// item space: item u is row u%m of batch entry u/m. Parallelizing
// over this flat space instead of nesting a per-batch dispatch keeps
// all B·H attention heads under ONE fixed tile decomposition (no
// nested ParallelFor from a worker) while still splitting within a
// head when the batch count is small.
type batchedDotTask struct {
	t                            dotTask // per-head template: k, n, scale, mode, bias
	m                            int     // rows per batch entry
	dst, a, bt                   []float32
	dstStride, aStride, btStride int
}

// Tile implements Job over flattened (batch, row) items.
func (b *batchedDotTask) Tile(_, u0, u1 int) {
	t := b.t
	for u0 < u1 {
		h := u0 / b.m
		r0 := u0 - h*b.m
		r1 := r0 + (u1 - u0)
		if r1 > b.m {
			r1 = b.m
		}
		t.dst = b.dst[h*b.dstStride : (h+1)*b.dstStride]
		t.a = b.a[h*b.aStride : (h+1)*b.aStride]
		t.bt = b.bt[h*b.btStride : (h+1)*b.btStride]
		dotRange(&t, r0, r1)
		u0 += r1 - r0
	}
}

var batchedDotTaskPool = sync.Pool{New: func() any { return new(batchedDotTask) }}

// dispatchDotBatched runs a batched dot task over batch·m rows.
func dispatchDotBatched(t batchedDotTask, batch int) {
	n := batch * t.m
	if n*t.t.k*t.t.n < parallelThreshold || runtime.GOMAXPROCS(0) == 1 {
		t.Tile(0, 0, n)
		return
	}
	bt := batchedDotTaskPool.Get().(*batchedDotTask)
	*bt = t
	forkTiles(n, NumTiles(n), bt)
	*bt = batchedDotTask{}
	batchedDotTaskPool.Put(bt)
}

// packBatch is the Job that transposes every batch entry's operand
// panel ahead of a batched product: item h packs src entry h into
// dst entry h.
type packBatch struct {
	dst, src             []float32
	rows, cols           int
	dstStride, srcStride int
}

// Tile implements Job over batch entries.
func (p *packBatch) Tile(_, h0, h1 int) {
	for h := h0; h < h1; h++ {
		packTranspose(p.dst[h*p.dstStride:(h+1)*p.dstStride], p.src[h*p.srcStride:(h+1)*p.srcStride], p.rows, p.cols)
	}
}

var packBatchPool = sync.Pool{New: func() any { return new(packBatch) }}

// packBatched transposes all `batch` panels of src ([rows, cols]
// each) into dst, in parallel across entries when large enough.
func packBatched(dst, src []float32, batch, rows, cols int) {
	p := packBatchPool.Get().(*packBatch)
	*p = packBatch{dst: dst, src: src, rows: rows, cols: cols,
		dstStride: rows * cols, srcStride: rows * cols}
	ParallelFor(batch, batch*rows*cols, p)
	*p = packBatch{}
	packBatchPool.Put(p)
}

// packPool recycles the packing buffers used to transpose operands
// into the contiguous row-major panels the dot kernel streams. The
// pool stores *[]float32 rather than []float32: putting a bare slice
// would box its header into an interface and allocate on every Put,
// defeating the zero-allocation steady state.
var packPool = sync.Pool{New: func() any { return new([]float32) }}

func getPack(n int) *[]float32 {
	p := packPool.Get().(*[]float32)
	if cap(*p) < n {
		*p = make([]float32, n)
	}
	*p = (*p)[:n]
	return p
}

func putPack(p *[]float32) { packPool.Put(p) }

// packTranspose writes srcᵀ into dst: src is [rows, cols] row-major,
// dst becomes [cols, rows]. Matrices that fit in L1 take a direct
// two-loop pass; larger ones are blocked for cache friendliness.
func packTranspose(dst, src []float32, rows, cols int) {
	const bs = 32
	if rows*cols <= 4096 {
		for r := 0; r < rows; r++ {
			row := src[r*cols : r*cols+cols]
			for c, v := range row {
				dst[c*rows+r] = v
			}
		}
		return
	}
	for r0 := 0; r0 < rows; r0 += bs {
		r1 := min(r0+bs, rows)
		for c0 := 0; c0 < cols; c0 += bs {
			c1 := min(c0+bs, cols)
			for r := r0; r < r1; r++ {
				row := src[r*cols : r*cols+cols]
				for c := c0; c < c1; c++ {
					dst[c*rows+r] = row[c]
				}
			}
		}
	}
}

// dotRange is the register-blocked micro-kernel: a 2×4 block of output
// values is accumulated while both operands stream contiguously
// (a row-major, bt pre-transposed row-major). On CPUs with AVX2+FMA
// the block reduction runs in the assembly kernel at eight lanes per
// instruction with the sub-vector tail handled here; elsewhere a pure
// scalar loop with eight register accumulators computes the same
// block. Reslicing every panel to a common length lets the compiler
// prove the scalar indexed loads in bounds.
func dotRange(t *dotTask, r0, r1 int) {
	k, n := t.k, t.n
	a, bt := t.a, t.bt
	vector := useFMA && k >= 8
	c := 0
	for ; c+4 <= n; c += 4 {
		b0 := bt[c*k : c*k+k]
		b1 := bt[(c+1)*k : (c+1)*k+k][:len(b0)]
		b2 := bt[(c+2)*k : (c+2)*k+k][:len(b0)]
		b3 := bt[(c+3)*k : (c+3)*k+k][:len(b0)]
		r := r0
		for ; r+2 <= r1; r += 2 {
			a0 := a[r*k : r*k+k][:len(b0)]
			a1 := a[(r+1)*k : (r+1)*k+k][:len(b0)]
			var s00, s01, s02, s03, s10, s11, s12, s13 float32
			if vector {
				var sums [8]float32
				dotBlock2x4(&a0[0], &a1[0], &b0[0], k, &sums)
				s00, s01, s02, s03 = sums[0], sums[1], sums[2], sums[3]
				s10, s11, s12, s13 = sums[4], sums[5], sums[6], sums[7]
				for i := k &^ 7; i < k; i++ {
					av0, av1 := a0[i], a1[i]
					bv0, bv1, bv2, bv3 := b0[i], b1[i], b2[i], b3[i]
					s00 += av0 * bv0
					s01 += av0 * bv1
					s02 += av0 * bv2
					s03 += av0 * bv3
					s10 += av1 * bv0
					s11 += av1 * bv1
					s12 += av1 * bv2
					s13 += av1 * bv3
				}
			} else {
				for i, av0 := range a0 {
					av1 := a1[i]
					bv0, bv1, bv2, bv3 := b0[i], b1[i], b2[i], b3[i]
					s00 += av0 * bv0
					s01 += av0 * bv1
					s02 += av0 * bv2
					s03 += av0 * bv3
					s10 += av1 * bv0
					s11 += av1 * bv1
					s12 += av1 * bv2
					s13 += av1 * bv3
				}
			}
			o0 := t.dst[r*n+c : r*n+c+4]
			o1 := t.dst[(r+1)*n+c : (r+1)*n+c+4]
			sc := t.scale
			switch t.mode {
			case dotOverwrite:
				o0[0], o0[1], o0[2], o0[3] = s00*sc, s01*sc, s02*sc, s03*sc
				o1[0], o1[1], o1[2], o1[3] = s10*sc, s11*sc, s12*sc, s13*sc
			case dotAccumulate:
				o0[0] += s00 * sc
				o0[1] += s01 * sc
				o0[2] += s02 * sc
				o0[3] += s03 * sc
				o1[0] += s10 * sc
				o1[1] += s11 * sc
				o1[2] += s12 * sc
				o1[3] += s13 * sc
			case dotBias:
				b := t.bias[c : c+4]
				o0[0], o0[1], o0[2], o0[3] = b[0]+s00*sc, b[1]+s01*sc, b[2]+s02*sc, b[3]+s03*sc
				o1[0], o1[1], o1[2], o1[3] = b[0]+s10*sc, b[1]+s11*sc, b[2]+s12*sc, b[3]+s13*sc
			}
		}
		for ; r < r1; r++ {
			ar := a[r*k : r*k+k][:len(b0)]
			var s0, s1, s2, s3 float32
			if vector {
				var sums [4]float32
				dotBlock1x4(&ar[0], &b0[0], k, &sums)
				s0, s1, s2, s3 = sums[0], sums[1], sums[2], sums[3]
				for i := k &^ 7; i < k; i++ {
					av := ar[i]
					s0 += av * b0[i]
					s1 += av * b1[i]
					s2 += av * b2[i]
					s3 += av * b3[i]
				}
			} else {
				for i, av := range ar {
					s0 += av * b0[i]
					s1 += av * b1[i]
					s2 += av * b2[i]
					s3 += av * b3[i]
				}
			}
			o := t.dst[r*n+c : r*n+c+4]
			sc := t.scale
			switch t.mode {
			case dotOverwrite:
				o[0], o[1], o[2], o[3] = s0*sc, s1*sc, s2*sc, s3*sc
			case dotAccumulate:
				o[0] += s0 * sc
				o[1] += s1 * sc
				o[2] += s2 * sc
				o[3] += s3 * sc
			case dotBias:
				b := t.bias[c : c+4]
				o[0], o[1], o[2], o[3] = b[0]+s0*sc, b[1]+s1*sc, b[2]+s2*sc, b[3]+s3*sc
			}
		}
	}
	for ; c < n; c++ {
		bc := bt[c*k : c*k+k]
		for r := r0; r < r1; r++ {
			ar := a[r*k : r*k+k][:len(bc)]
			var s float32
			for i, av := range ar {
				s += av * bc[i]
			}
			t.store1(r, c, s)
		}
	}
}

func (t *dotTask) store1(r, c int, s float32) {
	switch t.mode {
	case dotOverwrite:
		t.dst[r*t.n+c] = s * t.scale
	case dotAccumulate:
		t.dst[r*t.n+c] += s * t.scale
	case dotBias:
		t.dst[r*t.n+c] = t.bias[c] + s*t.scale
	}
}
