//go:build !amd64

package tensor

// Non-amd64 builds take the scalar transcendentals.

func expSlice(dst, src []float32) {
	for i, v := range src {
		dst[i] = exp32(v)
	}
}

func tanhSlice(dst, src []float32) {
	for i, v := range src {
		dst[i] = tanh32(v)
	}
}
