package tensor

import "math"

// RNG is a small splittable pseudo-random generator (SplitMix64-based)
// used for reproducible parameter initialization and synthetic data.
// Using our own generator keeps results identical across Go versions.
type RNG struct {
	state uint64
	// cached spare normal deviate for Box-Muller
	hasSpare bool
	spare    float64
}

// NewRNG seeds a generator. Distinct seeds yield independent streams.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed*0x9E3779B97F4A7C15 + 1} }

// RNGState is the serializable snapshot of an RNG stream, used by
// checkpoints so a resumed run continues the exact same sequence.
type RNGState struct {
	State    uint64  `json:"state"`
	HasSpare bool    `json:"has_spare,omitempty"`
	Spare    float64 `json:"spare,omitempty"`
}

// State snapshots the generator.
func (r *RNG) State() RNGState {
	return RNGState{State: r.state, HasSpare: r.hasSpare, Spare: r.spare}
}

// SetState restores a snapshot taken with State; the generator then
// reproduces the deviate sequence that followed the snapshot.
func (r *RNG) SetState(s RNGState) {
	r.state = s.State
	r.hasSpare = s.HasSpare
	r.spare = s.Spare
}

// Split derives an independent child generator; the parent advances.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64()) }

// Uint64 returns the next 64 random bits (SplitMix64).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform deviate in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0,n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard normal deviate (Box–Muller).
func (r *RNG) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * f
	r.hasSpare = true
	return u * f
}

// Perm returns a random permutation of [0,n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Randn fills a new tensor with N(0, std²) deviates.
func Randn(r *RNG, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = float32(r.Norm() * std)
	}
	return t
}

// Uniform fills a new tensor with uniform deviates in [lo,hi).
func Uniform(r *RNG, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = float32(lo + (hi-lo)*r.Float64())
	}
	return t
}

// XavierUniform initializes with the Glorot uniform scheme for a
// [fanIn, fanOut] weight matrix.
func XavierUniform(r *RNG, fanIn, fanOut int) *Tensor {
	limit := math.Sqrt(6 / float64(fanIn+fanOut))
	return Uniform(r, -limit, limit, fanIn, fanOut)
}
