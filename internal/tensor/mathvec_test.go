package tensor

import (
	"math"
	"testing"
)

// TestVecTranscendentalsMatchScalar pins the AVX2 exp/tanh kernels to
// the scalar reference bit-for-bit: the vector code mirrors every
// multiply and add without FMA contraction, so each lane must produce
// the exact float32 the scalar function returns — including around the
// branch boundaries (±0.625, ±9) and the exp range clamps.
func TestVecTranscendentalsMatchScalar(t *testing.T) {
	if !useFMA {
		t.Skip("vector kernels unavailable on this CPU")
	}
	var inputs []float32
	for _, v := range []float32{
		0, 1e-12, -1e-12, 0.1, -0.1, 0.624, 0.625, 0.626, -0.624, -0.625, -0.626,
		1, -1, 3.5, -3.5, 8.99, 9.0, 9.01, -8.99, -9.0, -9.01,
		20, -20, 44, -44, 87, -87, 88.3, -87.3, 88.5, -87.4, 200, -200,
		float32(math.Inf(1)), float32(math.Inf(-1)),
	} {
		inputs = append(inputs, v)
	}
	rng := NewRNG(77)
	for i := 0; i < 1000; i++ {
		inputs = append(inputs, float32((rng.Float64()-0.5)*30))
	}
	// Odd length exercises the scalar tail alongside the vector body.
	inputs = append(inputs, 0.33)

	got := make([]float32, len(inputs))
	expSlice(got, inputs)
	for i, x := range inputs {
		want := exp32(x)
		if math.Float32bits(got[i]) != math.Float32bits(want) {
			t.Fatalf("expVec(%v) = %v (bits %08x), scalar %v (bits %08x)",
				x, got[i], math.Float32bits(got[i]), want, math.Float32bits(want))
		}
	}
	tanhSlice(got, inputs)
	for i, x := range inputs {
		want := tanh32(x)
		if math.Float32bits(got[i]) != math.Float32bits(want) {
			t.Fatalf("tanhVec(%v) = %v (bits %08x), scalar %v (bits %08x)",
				x, got[i], math.Float32bits(got[i]), want, math.Float32bits(want))
		}
	}
}
