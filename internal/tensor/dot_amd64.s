//go:build amd64

#include "textflag.h"

// func dotBlock2x4(a0, a1, b *float32, k int, sums *[8]float32)
//
// Accumulates the 2x4 dot-product block
//   sums[j]   = sum_i a0[i] * b[j*k+i]
//   sums[4+j] = sum_i a1[i] * b[j*k+i]
// over i in [0, k&^7) with eight YMM accumulators (one per output).
// The scalar tail (k % 8 elements) is the caller's responsibility.
TEXT ·dotBlock2x4(SB), NOSPLIT, $0-40
	MOVQ a0+0(FP), SI
	MOVQ a1+8(FP), DI
	MOVQ b+16(FP), R8
	MOVQ k+24(FP), CX
	MOVQ sums+32(FP), DX

	// b row pointers: R9 = b1, R10 = b2, R11 = b3 at stride 4k bytes.
	MOVQ CX, AX
	SHLQ $2, AX
	LEAQ (R8)(AX*1), R9
	LEAQ (R9)(AX*1), R10
	LEAQ (R10)(AX*1), R11

	SHRQ $3, CX
	JZ   done

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7

loop:
	VMOVUPS (SI), Y8
	VMOVUPS (DI), Y9
	VMOVUPS (R8), Y10
	VMOVUPS (R9), Y11
	VMOVUPS (R10), Y12
	VMOVUPS (R11), Y13
	VFMADD231PS Y8, Y10, Y0
	VFMADD231PS Y9, Y10, Y4
	VFMADD231PS Y8, Y11, Y1
	VFMADD231PS Y9, Y11, Y5
	VFMADD231PS Y8, Y12, Y2
	VFMADD231PS Y9, Y12, Y6
	VFMADD231PS Y8, Y13, Y3
	VFMADD231PS Y9, Y13, Y7
	ADDQ $32, SI
	ADDQ $32, DI
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	ADDQ $32, R11
	DECQ CX
	JNZ  loop

	// Horizontally reduce each accumulator into sums[0..7].
	VEXTRACTF128 $1, Y0, X8
	VADDPS       X8, X0, X0
	VEXTRACTF128 $1, Y1, X8
	VADDPS       X8, X1, X1
	VEXTRACTF128 $1, Y2, X8
	VADDPS       X8, X2, X2
	VEXTRACTF128 $1, Y3, X8
	VADDPS       X8, X3, X3
	VEXTRACTF128 $1, Y4, X8
	VADDPS       X8, X4, X4
	VEXTRACTF128 $1, Y5, X8
	VADDPS       X8, X5, X5
	VEXTRACTF128 $1, Y6, X8
	VADDPS       X8, X6, X6
	VEXTRACTF128 $1, Y7, X8
	VADDPS       X8, X7, X7

	// Pairwise horizontal adds collapse (X0..X3) and (X4..X7) into one
	// register of four sums each.
	VHADDPS X1, X0, X0 // [s0a s0b s1a s1b]
	VHADDPS X3, X2, X2 // [s2a s2b s3a s3b]
	VHADDPS X2, X0, X0 // [s0 s1 s2 s3]
	VHADDPS X5, X4, X4
	VHADDPS X7, X6, X6
	VHADDPS X6, X4, X4 // [s4 s5 s6 s7]

	VMOVUPS X0, (DX)
	VMOVUPS X4, 16(DX)
	VZEROUPPER
	RET

done:
	VXORPS X0, X0, X0
	VMOVUPS X0, (DX)
	VMOVUPS X0, 16(DX)
	RET

// func dotBlock1x4(a0, b *float32, k int, sums *[4]float32)
TEXT ·dotBlock1x4(SB), NOSPLIT, $0-32
	MOVQ a0+0(FP), SI
	MOVQ b+8(FP), R8
	MOVQ k+16(FP), CX
	MOVQ sums+24(FP), DX

	MOVQ CX, AX
	SHLQ $2, AX
	LEAQ (R8)(AX*1), R9
	LEAQ (R9)(AX*1), R10
	LEAQ (R10)(AX*1), R11

	SHRQ $3, CX
	JZ   done1

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3

loop1:
	VMOVUPS (SI), Y8
	VMOVUPS (R8), Y10
	VMOVUPS (R9), Y11
	VMOVUPS (R10), Y12
	VMOVUPS (R11), Y13
	VFMADD231PS Y8, Y10, Y0
	VFMADD231PS Y8, Y11, Y1
	VFMADD231PS Y8, Y12, Y2
	VFMADD231PS Y8, Y13, Y3
	ADDQ $32, SI
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	ADDQ $32, R11
	DECQ CX
	JNZ  loop1

	VEXTRACTF128 $1, Y0, X8
	VADDPS       X8, X0, X0
	VEXTRACTF128 $1, Y1, X8
	VADDPS       X8, X1, X1
	VEXTRACTF128 $1, Y2, X8
	VADDPS       X8, X2, X2
	VEXTRACTF128 $1, Y3, X8
	VADDPS       X8, X3, X3
	VHADDPS X1, X0, X0
	VHADDPS X3, X2, X2
	VHADDPS X2, X0, X0
	VMOVUPS X0, (DX)
	VZEROUPPER
	RET

done1:
	VXORPS X0, X0, X0
	VMOVUPS X0, (DX)
	RET

// func cpuHasAVX2FMA() bool
TEXT ·cpuHasAVX2FMA(SB), NOSPLIT, $0-1
	// CPUID leaf 1: ECX bit 12 = FMA, bit 27 = OSXSAVE, bit 28 = AVX.
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, R8
	BTL  $12, R8
	JNC  no
	BTL  $27, R8
	JNC  no
	BTL  $28, R8
	JNC  no
	// XGETBV: XCR0 bits 1 and 2 = XMM and YMM state enabled by the OS.
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  no
	// CPUID leaf 7 subleaf 0: EBX bit 5 = AVX2.
	MOVL $7, AX
	XORL CX, CX
	CPUID
	BTL  $5, BX
	JNC  no
	MOVB $1, ret+0(FP)
	RET
no:
	MOVB $0, ret+0(FP)
	RET
