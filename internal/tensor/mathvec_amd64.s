//go:build amd64

#include "textflag.h"

// 8-lane AVX2 exp32 / tanh32. Every arithmetic step mirrors the scalar
// implementations in mathfast.go with separate multiply and add (no
// FMA contraction), so each lane computes the scalar function's exact
// bits — the cross-path equality the tensor property tests assert.

// Constant pool (float32 bit patterns; see mathfast.go for values).
DATA mvc_log2e+0(SB)/4, $0x3fb8aa3b  // 1.44269504…
DATA mvc_half+0(SB)/4, $0x3f000000   // 0.5
DATA mvc_expc1+0(SB)/4, $0x3f318000  // ln2 high part
DATA mvc_expc2+0(SB)/4, $0xb95e8083  // ln2 low part
DATA mvc_ep0+0(SB)/4, $0x39506967
DATA mvc_ep1+0(SB)/4, $0x3ab743ce
DATA mvc_ep2+0(SB)/4, $0x3c088908
DATA mvc_ep3+0(SB)/4, $0x3d2aa9c1
DATA mvc_ep4+0(SB)/4, $0x3e2aaaaa
DATA mvc_ep5+0(SB)/4, $0x3f000000
DATA mvc_one+0(SB)/4, $0x3f800000
DATA mvc_two+0(SB)/4, $0x40000000
DATA mvc_maxarg+0(SB)/4, $0x42b0c0a5 // 88.3762626647949
DATA mvc_minarg+0(SB)/4, $0xc2aeac50 // -87.3365478515625
DATA mvc_maxf32+0(SB)/4, $0x7f7fffff // MaxFloat32
DATA mvc_i127+0(SB)/4, $0x0000007f   // exponent bias (integer)
DATA mvc_absmask+0(SB)/4, $0x7fffffff
DATA mvc_c0625+0(SB)/4, $0x3f200000  // 0.625
DATA mvc_nine+0(SB)/4, $0x41100000
DATA mvc_negnine+0(SB)/4, $0xc1100000
DATA mvc_negone+0(SB)/4, $0xbf800000
DATA mvc_th0+0(SB)/4, $0xbbbaf0ea
DATA mvc_th1+0(SB)/4, $0x3ca9134e
DATA mvc_th2+0(SB)/4, $0xbd5c1e2d
DATA mvc_th3+0(SB)/4, $0x3e088393
DATA mvc_th4+0(SB)/4, $0xbeaaaa99
GLOBL mvc_log2e(SB), RODATA|NOPTR, $4
GLOBL mvc_half(SB), RODATA|NOPTR, $4
GLOBL mvc_expc1(SB), RODATA|NOPTR, $4
GLOBL mvc_expc2(SB), RODATA|NOPTR, $4
GLOBL mvc_ep0(SB), RODATA|NOPTR, $4
GLOBL mvc_ep1(SB), RODATA|NOPTR, $4
GLOBL mvc_ep2(SB), RODATA|NOPTR, $4
GLOBL mvc_ep3(SB), RODATA|NOPTR, $4
GLOBL mvc_ep4(SB), RODATA|NOPTR, $4
GLOBL mvc_ep5(SB), RODATA|NOPTR, $4
GLOBL mvc_one(SB), RODATA|NOPTR, $4
GLOBL mvc_two(SB), RODATA|NOPTR, $4
GLOBL mvc_maxarg(SB), RODATA|NOPTR, $4
GLOBL mvc_minarg(SB), RODATA|NOPTR, $4
GLOBL mvc_maxf32(SB), RODATA|NOPTR, $4
GLOBL mvc_i127(SB), RODATA|NOPTR, $4
GLOBL mvc_absmask(SB), RODATA|NOPTR, $4
GLOBL mvc_c0625(SB), RODATA|NOPTR, $4
GLOBL mvc_nine(SB), RODATA|NOPTR, $4
GLOBL mvc_negnine(SB), RODATA|NOPTR, $4
GLOBL mvc_negone(SB), RODATA|NOPTR, $4
GLOBL mvc_th0(SB), RODATA|NOPTR, $4
GLOBL mvc_th1(SB), RODATA|NOPTR, $4
GLOBL mvc_th2(SB), RODATA|NOPTR, $4
GLOBL mvc_th3(SB), RODATA|NOPTR, $4
GLOBL mvc_th4(SB), RODATA|NOPTR, $4

// EXPCORE computes Y5 = exp-polynomial(Y1) without range clamps,
// clobbering Y2, Y3, Y4. Mirrors exp32's op sequence exactly:
//   nf = floor(a·log2e + 0.5); r = a − nf·C1 − nf·C2;
//   p = Horner(r); p = p·r·r + r + 1; Y5 = p · 2^nf.
#define EXPCORE \
	VBROADCASTSS mvc_log2e(SB), Y2 \
	VMULPS       Y2, Y1, Y2        \
	VBROADCASTSS mvc_half(SB), Y3  \
	VADDPS       Y3, Y2, Y2        \
	VROUNDPS     $1, Y2, Y2        \
	VBROADCASTSS mvc_expc1(SB), Y3 \
	VMULPS       Y3, Y2, Y3        \
	VSUBPS       Y3, Y1, Y4        \
	VBROADCASTSS mvc_expc2(SB), Y3 \
	VMULPS       Y3, Y2, Y3        \
	VSUBPS       Y3, Y4, Y4        \
	VBROADCASTSS mvc_ep0(SB), Y5   \
	VBROADCASTSS mvc_ep1(SB), Y3   \
	VMULPS       Y4, Y5, Y5        \
	VADDPS       Y3, Y5, Y5        \
	VBROADCASTSS mvc_ep2(SB), Y3   \
	VMULPS       Y4, Y5, Y5        \
	VADDPS       Y3, Y5, Y5        \
	VBROADCASTSS mvc_ep3(SB), Y3   \
	VMULPS       Y4, Y5, Y5        \
	VADDPS       Y3, Y5, Y5        \
	VBROADCASTSS mvc_ep4(SB), Y3   \
	VMULPS       Y4, Y5, Y5        \
	VADDPS       Y3, Y5, Y5        \
	VBROADCASTSS mvc_ep5(SB), Y3   \
	VMULPS       Y4, Y5, Y5        \
	VADDPS       Y3, Y5, Y5        \
	VMULPS       Y4, Y5, Y5        \
	VMULPS       Y4, Y5, Y5        \
	VADDPS       Y4, Y5, Y5        \
	VBROADCASTSS mvc_one(SB), Y3   \
	VADDPS       Y3, Y5, Y5        \
	VCVTTPS2DQ   Y2, Y2            \
	VPBROADCASTD mvc_i127(SB), Y3  \
	VPADDD       Y3, Y2, Y2        \
	VPSLLD       $23, Y2, Y2       \
	VMULPS       Y2, Y5, Y5

// func expVec(dst, src *float32, n int)
TEXT ·expVec(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	SHRQ $3, CX
	JZ   edone

eloop:
	VMOVUPS (SI), Y0 // x (kept for the clamp blends)
	VMOVUPS Y0, Y1
	EXPCORE

	// x > 88.376… → MaxFloat32; x < −87.336… → 0.
	VBROADCASTSS mvc_maxarg(SB), Y2
	VCMPPS       $0x0e, Y2, Y0, Y3 // GT_OS
	VBROADCASTSS mvc_maxf32(SB), Y4
	VBLENDVPS    Y3, Y4, Y5, Y5
	VBROADCASTSS mvc_minarg(SB), Y2
	VCMPPS       $0x01, Y2, Y0, Y3 // LT_OS
	VXORPS       Y4, Y4, Y4
	VBLENDVPS    Y3, Y4, Y5, Y5

	VMOVUPS Y5, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNZ     eloop

edone:
	VZEROUPPER
	RET

// func tanhVec(dst, src *float32, n int)
TEXT ·tanhVec(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	SHRQ $3, CX
	JZ   tdone

tloop:
	VMOVUPS (SI), Y0 // x, preserved throughout

	// Small-|x| minimax polynomial: res1 = Horner(z)·z·x + x, z = x².
	VMULPS       Y0, Y0, Y1
	VBROADCASTSS mvc_th0(SB), Y7
	VBROADCASTSS mvc_th1(SB), Y3
	VMULPS       Y1, Y7, Y7
	VADDPS       Y3, Y7, Y7
	VBROADCASTSS mvc_th2(SB), Y3
	VMULPS       Y1, Y7, Y7
	VADDPS       Y3, Y7, Y7
	VBROADCASTSS mvc_th3(SB), Y3
	VMULPS       Y1, Y7, Y7
	VADDPS       Y3, Y7, Y7
	VBROADCASTSS mvc_th4(SB), Y3
	VMULPS       Y1, Y7, Y7
	VADDPS       Y3, Y7, Y7
	VMULPS       Y1, Y7, Y7
	VMULPS       Y0, Y7, Y7
	VADDPS       Y0, Y7, Y7

	// mask625 = |x| < 0.625 (kept in Y6 across the exp core).
	VBROADCASTSS mvc_absmask(SB), Y2
	VANDPS       Y0, Y2, Y6
	VBROADCASTSS mvc_c0625(SB), Y2
	VCMPPS       $0x01, Y2, Y6, Y6

	// Large-|x| identity: res2 = 1 − 2/(e^{2x}+1). Lanes beyond the
	// exp core's range are overridden by the ±9 saturation blends
	// below, exactly as the scalar branch structure does.
	VADDPS Y0, Y0, Y1
	EXPCORE
	VBROADCASTSS mvc_one(SB), Y2
	VADDPS       Y2, Y5, Y5
	VBROADCASTSS mvc_two(SB), Y3
	VDIVPS       Y5, Y3, Y5
	VSUBPS       Y5, Y2, Y5 // res2 = 1 − 2/(e+1)

	VBLENDVPS Y6, Y7, Y5, Y5 // |x| < 0.625 → polynomial

	// Saturation: x > 9 → 1; x < −9 → −1.
	VBROADCASTSS mvc_nine(SB), Y2
	VCMPPS       $0x0e, Y2, Y0, Y3
	VBROADCASTSS mvc_one(SB), Y4
	VBLENDVPS    Y3, Y4, Y5, Y5
	VBROADCASTSS mvc_negnine(SB), Y2
	VCMPPS       $0x01, Y2, Y0, Y3
	VBROADCASTSS mvc_negone(SB), Y4
	VBLENDVPS    Y3, Y4, Y5, Y5

	VMOVUPS Y5, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNZ     tloop

tdone:
	VZEROUPPER
	RET
