package tensor

import "testing"

// TestRNGStateRoundTrip checks that a restored RNG reproduces the
// exact deviate stream, including the cached Box–Muller spare.
func TestRNGStateRoundTrip(t *testing.T) {
	r := NewRNG(7)
	r.Norm() // leaves a spare cached
	st := r.State()
	if !st.HasSpare {
		t.Fatal("expected a cached spare after one Norm draw")
	}

	var want [8]float64
	for i := range want {
		want[i] = r.Norm()
	}

	r2 := NewRNG(0)
	r2.SetState(st)
	for i := range want {
		if got := r2.Norm(); got != want[i] {
			t.Fatalf("deviate %d: %v != %v", i, got, want[i])
		}
	}
}

func TestRNGStateUint64Stream(t *testing.T) {
	r := NewRNG(42)
	r.Uint64()
	st := r.State()
	a, b := r.Uint64(), r.Uint64()
	r.SetState(st)
	if r.Uint64() != a || r.Uint64() != b {
		t.Error("restored RNG did not reproduce the Uint64 stream")
	}
}
