//go:build amd64

package tensor

// The hot dot-product micro-kernel has a hand-written AVX2+FMA
// implementation: eight 8-lane fused multiply-add accumulators cover
// the same 2×4 output block as the scalar kernel at eight elements per
// instruction. Feature support (AVX2, FMA, and OS YMM state) is
// detected once at startup; every machine without it — and every
// reduction shorter than one vector — takes the portable scalar path,
// which remains the reference implementation the property tests
// compare against.

// dotBlock2x4 accumulates sums[j] = Σ_i a0[i]·b_j[i] and
// sums[4+j] = Σ_i a1[i]·b_j[i] for the four contiguous bt rows
// b_j = b[j·k : j·k+k], processing the first k&^7 elements. The caller
// adds the scalar tail.
//
//go:noescape
func dotBlock2x4(a0, a1, b *float32, k int, sums *[8]float32)

// dotBlock1x4 is the single-row variant.
//
//go:noescape
func dotBlock1x4(a0, b *float32, k int, sums *[4]float32)

// cpuHasAVX2FMA reports AVX2+FMA instruction support with OS-enabled
// YMM state (CPUID + XGETBV).
func cpuHasAVX2FMA() bool

// useFMA gates the vector micro-kernel.
var useFMA = cpuHasAVX2FMA()
