package tensor

import (
	"fmt"
	"math/bits"
)

// Ensure returns a tensor of the given shape, reusing t's header and
// backing storage when its capacity allows and allocating a fresh
// tensor otherwise. It is the idiom for module-owned scratch buffers:
//
//	l.y = tensor.Ensure(l.y, rows, cols)
//
// After the first call with a given shape the buffer is stable, so a
// steady-state training step performs no heap allocations. Contents
// are unspecified after Ensure; kernels writing into the buffer must
// not assume it is zeroed.
func Ensure(t *Tensor, shape ...int) *Tensor {
	n := checkShape(shape)
	if t == nil || cap(t.data) < n || cap(t.shape) < len(shape) {
		return New(shape...)
	}
	t.shape = append(t.shape[:0], shape...)
	t.data = t.data[:n]
	return t
}

// EnsureZeroed is Ensure followed by zero-filling.
func EnsureZeroed(t *Tensor, shape ...int) *Tensor {
	t = Ensure(t, shape...)
	t.Zero()
	return t
}

// Workspace is a size-bucketed free-list pool of tensors for
// transient values whose shapes vary call to call. Get returns a
// tensor with unspecified contents; Put recycles it. Buffers are
// bucketed by power-of-two capacity, so a Get is served by any
// previously Put tensor of the same size class and reaches
// steady-state zero allocations.
//
// A Workspace is not safe for concurrent use; each training goroutine
// owns its own (the simulated-cluster engines each run single-
// threaded, matching how one GPU's stream owns its arena).
type Workspace struct {
	buckets map[uint][]*Tensor
}

// NewWorkspace returns an empty pool.
func NewWorkspace() *Workspace {
	return &Workspace{buckets: make(map[uint][]*Tensor)}
}

// sizeClass returns the bucket exponent whose capacity 2^e holds n.
func sizeClass(n int) uint { return uint(bits.Len(uint(n - 1))) }

// Get returns a tensor of the given shape with unspecified contents.
func (w *Workspace) Get(shape ...int) *Tensor {
	n := checkShape(shape)
	class := sizeClass(n)
	free := w.buckets[class]
	if len(free) == 0 {
		t := &Tensor{shape: append([]int(nil), shape...), data: make([]float32, n, 1<<class)}
		return t
	}
	t := free[len(free)-1]
	free[len(free)-1] = nil
	w.buckets[class] = free[:len(free)-1]
	return Ensure(t, shape...)
}

// GetZeroed returns a zero-filled tensor of the given shape.
func (w *Workspace) GetZeroed(shape ...int) *Tensor {
	t := w.Get(shape...)
	t.Zero()
	return t
}

// Put recycles a tensor into the pool. The caller must not use t
// afterwards. Tensors from any source may be Put; each lands in the
// largest bucket its capacity fully covers.
func (w *Workspace) Put(t *Tensor) {
	if t == nil || cap(t.data) == 0 {
		return
	}
	// Largest class with 2^e <= cap, so every tensor in a bucket can
	// serve any request routed to it.
	class := uint(bits.Len(uint(cap(t.data)))) - 1
	w.buckets[class] = append(w.buckets[class], t)
}

// Stats reports the pooled tensor count and total pooled floats,
// for diagnostics and tests.
func (w *Workspace) Stats() (tensors, floats int) {
	for _, free := range w.buckets {
		tensors += len(free)
		for _, t := range free {
			floats += cap(t.data)
		}
	}
	return tensors, floats
}

// String summarizes bucket occupancy.
func (w *Workspace) String() string {
	t, f := w.Stats()
	return fmt.Sprintf("Workspace{%d tensors, %d floats}", t, f)
}
