package tensor

import (
	"runtime"
	"sync"
)

// This file is the intra-rank parallel runtime: a reusable
// ParallelFor / task-queue API over the persistent worker pool that
// every hot kernel (packed dot products, batched attention products,
// softmax/GELU, LayerNorm, the FFT, the AFNO spectral multiply, the
// optimizer updates) dispatches through.
//
// # Determinism rule: fixed tile ownership
//
// Work is always partitioned into NumTiles(n) contiguous tiles whose
// boundaries are a pure function of the item count n — never of the
// worker count, GOMAXPROCS, or which goroutine runs which tile. A
// kernel whose outputs are disjoint per item is therefore
// bit-identical at any worker count for free; a kernel that reduces
// across items must accumulate per-tile partials (indexed by the tile
// argument) and merge them in tile order on the calling goroutine.
// Under that rule every reduction in the repo stays bit-deterministic
// for GOMAXPROCS ∈ {1, 4, 8, ...}, which the GOMAXPROCS-sweep parity
// tests pin.
//
// # Zero allocations
//
// Tasks travel through the pool channel by value and jobs are passed
// as a pointer-shaped interface, so a steady-state dispatch performs
// no heap allocations: callers keep their Job implementations in
// long-lived structs (or package-level sync.Pools) and the WaitGroups
// are recycled. TestParallelForAllocs asserts the steady state.

// Job is one parallel kernel invocation. Tile computes items
// [i0, i1) of tile `tile`; implementations must be safe for
// concurrent Tile calls on distinct tiles and must NOT call
// ParallelFor (or any dispatching kernel) from inside Tile — nested
// dispatch from a pool worker could exhaust the pool and deadlock.
type Job interface {
	Tile(tile, i0, i1 int)
}

// maxTiles is the fixed upper bound on tiles per dispatch: enough
// slack over any realistic worker count that the pool load-balances,
// small enough that per-tile partial-reduction scratch stays cheap.
// It is a constant on purpose — tile boundaries must not move when
// the worker count does.
const maxTiles = 32

// NumTiles returns the tile count ParallelFor uses for n items:
// min(n, maxTiles). It is a pure function of n, so callers can size
// per-tile reduction scratch once and rely on the decomposition never
// changing across worker counts.
func NumTiles(n int) int {
	if n < maxTiles {
		if n < 0 {
			return 0
		}
		return n
	}
	return maxTiles
}

// tileBounds returns the half-open item range of tile t when n items
// are split into `tiles` tiles: contiguous chunks of ceil(n/tiles),
// the last tile taking the remainder.
func tileBounds(n, tiles, t int) (i0, i1 int) {
	chunk := (n + tiles - 1) / tiles
	i0 = t * chunk
	i1 = i0 + chunk
	if i1 > n {
		i1 = n
	}
	if i0 > n {
		i0 = n
	}
	return i0, i1
}

// parallelThreshold is the minimum per-dispatch arithmetic (in
// multiply-add equivalents) below which a kernel stays on the calling
// goroutine; cross-worker handoff costs more than it saves on small
// work. Exported knobs live in docs/PERFORMANCE.md.
const parallelThreshold = 1 << 16

// ParallelFor runs job.Tile over [0, n) split into NumTiles(n) fixed
// tiles. `flops` estimates the dispatch's total arithmetic (in
// multiply-add equivalents): below parallelThreshold, or when the
// runtime allows a single worker, every tile runs serially in tile
// order on the caller — the same decomposition, so results are
// identical either way. The caller always executes the final tile
// itself.
func ParallelFor(n int, flops int, job Job) {
	if n <= 0 {
		return
	}
	tiles := NumTiles(n)
	if tiles == 1 || flops < parallelThreshold || runtime.GOMAXPROCS(0) == 1 {
		for t := 0; t < tiles; t++ {
			i0, i1 := tileBounds(n, tiles, t)
			job.Tile(t, i0, i1)
		}
		return
	}
	forkTiles(n, tiles, job)
}

// poolTask is one tile handoff through the worker channel. Plain
// value, no allocation.
type poolTask struct {
	job    Job
	tile   int
	i0, i1 int
	wg     *sync.WaitGroup
}

var (
	poolOnce  sync.Once
	poolTasks chan poolTask
	poolSize  int
)

// minPoolWorkers keeps enough workers resident for the GOMAXPROCS
// sweeps the determinism tests run (1/4/8) even on hosts with fewer
// cores. Idle workers are parked goroutines; the worker count never
// affects results (fixed tile ownership), only who executes a tile.
const minPoolWorkers = 8

func startPool() {
	poolSize = runtime.NumCPU()
	if g := runtime.GOMAXPROCS(0); g > poolSize {
		poolSize = g
	}
	if poolSize < minPoolWorkers {
		poolSize = minPoolWorkers
	}
	poolTasks = make(chan poolTask, 8*poolSize)
	for w := 0; w < poolSize; w++ {
		go func() {
			for t := range poolTasks {
				t.job.Tile(t.tile, t.i0, t.i1)
				t.wg.Done()
			}
		}()
	}
}

// wgPool recycles WaitGroups across dispatches; a stack-declared
// WaitGroup would escape to the heap through the task channel.
var wgPool = sync.Pool{New: func() any { return new(sync.WaitGroup) }}

// forkTiles enqueues tiles 0..tiles-2 on the worker pool, runs the
// final tile on the calling goroutine, and waits. Split out from
// ParallelFor so the allocation test can exercise the pooled path
// directly (AllocsPerRun pins GOMAXPROCS to 1, which would otherwise
// select the serial path).
func forkTiles(n, tiles int, job Job) {
	poolOnce.Do(startPool)
	wg := wgPool.Get().(*sync.WaitGroup)
	last := tiles - 1
	for t := 0; t < last; t++ {
		i0, i1 := tileBounds(n, tiles, t)
		if i0 >= i1 {
			continue
		}
		wg.Add(1)
		poolTasks <- poolTask{job: job, tile: t, i0: i0, i1: i1, wg: wg}
	}
	i0, i1 := tileBounds(n, tiles, last)
	if i0 < i1 {
		job.Tile(last, i0, i1)
	}
	wg.Wait()
	wgPool.Put(wg)
}
