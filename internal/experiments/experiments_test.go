package experiments

import (
	"strings"
	"testing"
)

func TestFig5ShapeMatchesPaper(t *testing.T) {
	rows := Fig5()
	if len(rows) != 10 {
		t.Fatalf("%d rows", len(rows))
	}
	last := rows[len(rows)-1]
	if last.GPUs != 512 {
		t.Fatalf("last row GPUs %d", last.GPUs)
	}
	// The paper's ordering at scale: Hybrid-STOP > TP > FSDP.
	if !(last.Hybrid > last.TP && last.TP > last.FSDP) {
		t.Errorf("ordering at 512 GPUs: hybrid %d, tp %d, fsdp %d", last.Hybrid, last.TP, last.FSDP)
	}
	// Hybrid-STOP must accommodate the 143 B the paper demonstrates.
	if last.Hybrid < 143e9 {
		t.Errorf("Hybrid-STOP cap %d below the demonstrated 143 B", last.Hybrid)
	}
	out := FormatFig5(rows)
	if !strings.Contains(out, "Hybrid-STOP") {
		t.Error("format output malformed")
	}
}

func TestTableIPattern(t *testing.T) {
	rows := TableI()
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	if !rows[0].OOM {
		t.Error("no-optimization column must OOM")
	}
	prev := 1e18
	for _, r := range rows[1:] {
		if r.OOM {
			t.Fatalf("%s unexpectedly OOM", r.Name)
		}
		if r.Walltime >= prev {
			t.Errorf("%s: walltime %v did not improve on %v", r.Name, r.Walltime, prev)
		}
		// Within 2× of the paper's value.
		if r.Walltime < r.Paper/2 || r.Walltime > r.Paper*2 {
			t.Errorf("%s: %0.3f s vs paper %0.2f s", r.Name, r.Walltime, r.Paper)
		}
		prev = r.Walltime
	}
	out := FormatTableI(rows)
	if !strings.Contains(out, "OOM") {
		t.Error("format should show the OOM column")
	}
}

func TestFig6SweepShape(t *testing.T) {
	rows := Fig6()
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	// Find the fastest feasible configuration; the paper's optimum is
	// FSDP 64 × TP 8.
	best := -1
	for i, r := range rows {
		if r.OOM {
			continue
		}
		if best < 0 || r.Walltime < rows[best].Walltime {
			best = i
		}
	}
	if best < 0 {
		t.Fatal("every configuration OOMed")
	}
	if rows[best].TP < 2 || rows[best].TP > 32 {
		t.Errorf("optimum at TP=%d, paper's optimum is TP=8", rows[best].TP)
	}
	// The TP=1 extreme is FSDP alone and must OOM (paper: "ran out of
	// memory when using either FSDP or tensor parallelism alone").
	if !rows[0].OOM {
		t.Error("TP=1 (FSDP alone) should OOM on the 113 B model")
	}
	// The TP=256 extreme runs but far slower than the optimum
	// (paper: 25× slower than FSDP 64 × TP 8).
	last := rows[len(rows)-1]
	if last.TP == 256 && !last.OOM {
		if ratio := last.Walltime / rows[best].Walltime; ratio < 5 {
			t.Errorf("TP=256 only %.1f× slower than optimum; paper reports ≈25×", ratio)
		}
	}
	FormatFig6(rows)
}

func TestFig7Bands(t *testing.T) {
	for _, channels := range []int{48, 91} {
		rows := Fig7(channels)
		if len(rows) != 4*8 {
			t.Fatalf("%d rows", len(rows))
		}
		for _, r := range rows {
			if r.GPUs == 512 && (r.Efficiency < 0.999 || r.Efficiency > 1.001) {
				t.Errorf("%s: baseline efficiency %v != 1", r.Model, r.Efficiency)
			}
			if r.GPUs == 49152 && (r.Efficiency < 0.41 || r.Efficiency > 0.95) {
				t.Errorf("%s (%dch): efficiency %0.2f at 49k outside the paper band", r.Model, channels, r.Efficiency)
			}
			if r.TimePerObs <= 0 {
				t.Errorf("%s: nonpositive time", r.Model)
			}
		}
		FormatFig7(rows)
	}
}

func TestFig7NinetyOneChannelsSlower(t *testing.T) {
	r48 := Fig7(48)
	r91 := Fig7(91)
	for i := range r48 {
		if r48[i].GPUs == 49152 && r91[i].TimePerObs <= r48[i].TimePerObs {
			t.Errorf("%s at 49k: 91ch %0.2e not slower than 48ch %0.2e",
				r48[i].Model, r91[i].TimePerObs, r48[i].TimePerObs)
		}
	}
}

func TestFig8LargerModelsLearnFaster(t *testing.T) {
	curves := Fig8(QuickScale())
	if len(curves) != 3 {
		t.Fatalf("%d curves", len(curves))
	}
	// Sizes ascend.
	for i := 1; i < len(curves); i++ {
		if curves[i].Params <= curves[i-1].Params {
			t.Fatalf("ladder not ascending: %d then %d", curves[i-1].Params, curves[i].Params)
		}
	}
	// The paper's qualitative claim: after the same sample budget the
	// largest model's loss is at or below the smallest's.
	small := FinalLoss(curves[0], 5)
	large := FinalLoss(curves[len(curves)-1], 5)
	if large > small*1.1 {
		t.Errorf("largest model loss %v should not trail smallest %v", large, small)
	}
	// Every curve actually trained (loss fell).
	for _, c := range curves {
		if FinalLoss(c, 5) >= c.Points[0].Loss {
			t.Errorf("%s: loss did not fall (%v -> %v)", c.Name, c.Points[0].Loss, FinalLoss(c, 5))
		}
	}
	FormatFig8(curves)
}

func TestFig9SkillComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("fig9 trains four models")
	}
	results := Fig9(QuickScale())
	// Four models × three leads.
	if len(results) != 12 {
		t.Fatalf("%d results", len(results))
	}
	// FourCastNet offers only the 1-day forecast, as in the paper.
	for _, r := range results {
		if r.Model == "FourCastNet" && r.LeadDays > 1 && r.Offered {
			t.Error("FourCastNet must not offer 14/30-day forecasts")
		}
	}
	// ORBIT must clearly beat climatology (0) at the 1-day lead.
	a1, ok := MeanACCFor(results, "ORBIT", 1)
	if !ok {
		t.Fatal("missing ORBIT at 1d")
	}
	if a1 <= 0.3 {
		t.Errorf("ORBIT 1-day wACC %v should be well above climatology", a1)
	}
	// Skill decays with lead (forecasting is genuinely harder at
	// longer leads on the synthetic dynamics).
	a30, _ := MeanACCFor(results, "ORBIT", 30)
	if a30 >= a1 {
		t.Errorf("ORBIT wACC should decay with lead: %v at 1d vs %v at 30d", a1, a30)
	}
	// ORBIT (10 pre-training sources, QK-norm) stays within noise of
	// the ClimaX ablation at quick scale; the full-scale run recorded
	// in EXPERIMENTS.md shows the separation.
	var orbitMean, climaxMean float64
	for _, d := range []int{1, 14, 30} {
		o, _ := MeanACCFor(results, "ORBIT", d)
		c, _ := MeanACCFor(results, "ClimaX", d)
		orbitMean += o
		climaxMean += c
	}
	if orbitMean < climaxMean-0.3 {
		t.Errorf("ORBIT mean wACC %v far below ClimaX %v", orbitMean/3, climaxMean/3)
	}
	FormatFig9(results)
}

func TestFig10Decreasing(t *testing.T) {
	if testing.Short() {
		t.Skip("fig10 trains three models")
	}
	rows := Fig10(QuickScale())
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Samples <= 0 {
			t.Errorf("%s: nonpositive sample count", r.Name)
		}
	}
	// Quick scale only checks the harness runs end to end; the
	// size-vs-samples trend is measured by the full-scale run
	// recorded in EXPERIMENTS.md (convergence detection needs more
	// than a handful of evaluation points to be meaningful).
	FormatFig10(rows)
}
