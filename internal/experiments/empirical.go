package experiments

import (
	"fmt"
	"strings"

	"orbit/internal/afno"
	"orbit/internal/baselines"
	"orbit/internal/climate"
	"orbit/internal/metrics"
	"orbit/internal/tensor"
	"orbit/internal/train"
	"orbit/internal/vit"
)

// Scale selects the cost of the empirical (real-training) runs.
type Scale struct {
	// Grid dimensions (powers of two for the AFNO FFT).
	Height, Width int
	// PretrainSteps / FinetuneSteps bound the optimizer steps.
	PretrainSteps, FinetuneSteps int
	// StepsPerSource is the time range drawn from each CMIP6 source.
	StepsPerSource int
	// EvalSamples is the number of held-out samples scored.
	EvalSamples int
	// Sizes are the embed dims of the model ladder standing in for
	// 115M/1B/10B/113B (scaled down, same architecture).
	Sizes []int
}

// QuickScale finishes in seconds — used by tests.
func QuickScale() Scale {
	return Scale{
		Height: 8, Width: 16,
		PretrainSteps: 30, FinetuneSteps: 60, StepsPerSource: 48,
		EvalSamples: 6,
		Sizes:       []int{8, 16, 32},
	}
}

// FullScale is the cmd/bench configuration (minutes on a laptop).
func FullScale() Scale {
	return Scale{
		Height: 16, Width: 32,
		PretrainSteps: 150, FinetuneSteps: 300, StepsPerSource: 256,
		EvalSamples: 12,
		Sizes:       []int{8, 16, 32, 48},
	}
}

// sizeName maps the scaled-down ladder onto the paper's labels.
func sizeName(i int) string {
	names := []string{"115M-scale", "1B-scale", "10B-scale", "113B-scale"}
	if i < len(names) {
		return names[i]
	}
	return fmt.Sprintf("size-%d", i)
}

// ladderConfig builds the i-th model of the scaled ladder.
func ladderConfig(sc Scale, channels, embed int) vit.Config {
	layers := 1
	if embed >= 32 {
		layers = 2
	}
	return vit.Config{
		Name: fmt.Sprintf("orbit-e%d", embed), Channels: channels, OutChannels: channels,
		Height: sc.Height, Width: sc.Width, Patch: 4,
		EmbedDim: embed, Layers: layers, Heads: 4, QKNorm: true,
	}
}

// Fig8Curve is one model size's pre-training loss trajectory.
type Fig8Curve struct {
	Name   string
	Params int64
	Points []train.LossPoint
}

// Fig8 pre-trains the model-size ladder on the ten-source CMIP6-like
// corpus with a shared batch size and records wMSE versus samples —
// the paper's data-efficiency comparison (its larger models overtake
// smaller ones after ~2 M samples; the scaled ladder shows the same
// ordering in miniature).
func Fig8(sc Scale) []Fig8Curve {
	vars := climate.RegistrySmall()
	corpus := climate.NewPretrainCorpus(vars, sc.Height, sc.Width, climate.CMIP6Sources(), sc.StepsPerSource, 4)
	var curves []Fig8Curve
	for i, embed := range sc.Sizes {
		cfg := ladderConfig(sc, len(vars), embed)
		tc := train.DefaultConfig()
		tc.TotalSteps = sc.PretrainSteps
		tc.WarmupSteps = sc.PretrainSteps / 10
		tc.Seed = 7
		m, curve, err := train.Pretrain(cfg, tc, corpus, sc.PretrainSteps)
		if err != nil {
			panic(err)
		}
		curves = append(curves, Fig8Curve{Name: sizeName(i), Params: m.NumParams(), Points: curve})
	}
	return curves
}

// FormatFig8 renders loss-vs-samples checkpoints.
func FormatFig8(curves []Fig8Curve) string {
	var b strings.Builder
	b.WriteString("Fig. 8 — pre-training wMSE vs samples (scaled model ladder, 10 CMIP6-like sources)\n")
	for _, c := range curves {
		fmt.Fprintf(&b, "%-12s (%7d params):", c.Name, c.Params)
		step := len(c.Points) / 6
		if step < 1 {
			step = 1
		}
		for i := 0; i < len(c.Points); i += step {
			fmt.Fprintf(&b, "  %d:%.4f", c.Points[i].Samples, c.Points[i].Loss)
		}
		fmt.Fprintf(&b, "  final:%.4f\n", c.Points[len(c.Points)-1].Loss)
	}
	b.WriteString("paper: larger models converge faster per sample, overtaking after ~2M samples\n")
	return b.String()
}

// FinalLoss returns the mean of the last k losses of a curve.
func FinalLoss(c Fig8Curve, k int) float64 {
	if k > len(c.Points) {
		k = len(c.Points)
	}
	var s float64
	for _, p := range c.Points[len(c.Points)-k:] {
		s += p.Loss
	}
	return s / float64(k)
}

// Fig9Result holds wACC per variable for one model at one lead.
type Fig9Result struct {
	Model    string
	LeadDays int
	// ACC is keyed by output variable name (z500, t850, t2m, u10
	// stand-ins).
	ACC map[string]float64
	// Offered is false where the paper's comparison lacks the entry
	// (FourCastNet has no 14/30-day forecasts).
	Offered bool
}

// fig9Vars returns the four paper output variables' indices in the
// small registry.
func fig9Vars(vars []climate.Variable) (names []string, idx []int) {
	for _, n := range []string{"geopotential_500", "temperature_850", "t2m", "u10"} {
		i := climate.IndexOf(vars, n)
		if i < 0 {
			panic("experiments: missing fig9 variable " + n)
		}
		names = append(names, n)
		idx = append(idx, i)
	}
	return names, idx
}

// Fig9 runs the forecast-skill comparison: ORBIT (pre-trained on ten
// sources, fine-tuned multi-lead), a ClimaX-like ablation (no QK-norm,
// five pre-training sources), a FourCastNet-like AFNO (single-step,
// ERA5-only, evaluated at 1 day by rollout), and the IFS-like
// numerical surrogate — each scored by wACC on held-out "2020" data
// at 1-, 14- and 30-day leads.
func Fig9(sc Scale) []Fig9Result {
	vars := climate.RegistrySmall()
	names, chans := fig9Vars(vars)
	leads := []int{1, 14, 30}
	leadSteps := func(days int) int { return days * climate.StepsPerDay }

	era := climate.NewWorld(vars, sc.Height, sc.Width, climate.ERA5Source())
	stats := era.EstimateStats(8)
	// Train on "1979–2018", evaluate on "2020" (a disjoint window).
	trainStart, trainSteps := 0, sc.StepsPerSource*3
	testStart := trainStart + trainSteps + 120

	testSet := func(days int) *climate.Dataset {
		ds := climate.NewDataset(era, stats, testStart, sc.EvalSamples*8, leadSteps(days))
		ds.OutputChans = chans
		return ds
	}

	var results []Fig9Result

	// --- ORBIT and the ClimaX-like ablation ---
	type vitSpec struct {
		name    string
		qkNorm  bool
		sources []climate.Source
		steps   int
	}
	specs := []vitSpec{
		{"ORBIT", true, climate.CMIP6Sources(), sc.PretrainSteps},
		{"ClimaX", false, climate.CMIP6Sources()[:5], sc.PretrainSteps / 2},
	}
	allChans := make([]int, len(vars))
	for i := range allChans {
		allChans[i] = i
	}
	for _, spec := range specs {
		corpus := climate.NewPretrainCorpus(vars, sc.Height, sc.Width, spec.sources, sc.StepsPerSource, 4)
		cfg := ladderConfig(sc, len(vars), sc.Sizes[len(sc.Sizes)-1])
		cfg.QKNorm = spec.qkNorm
		tc := train.DefaultConfig()
		tc.TotalSteps = spec.steps + sc.FinetuneSteps
		tc.Seed = 11
		// Both pre-training and fine-tuning predict tendencies
		// (state change), the GraphCast/FourCastNet convention that
		// makes the anomaly signal learnable at small scale.
		tcPre := tc
		tcPre.ResidualChans = allChans
		pre, _, err := train.Pretrain(cfg, tcPre, corpus, spec.steps)
		if err != nil {
			panic(err)
		}
		// Fine-tune one specialist per lead from the shared pre-trained
		// trunk, as ClimaX fine-tunes per task with tailored settings;
		// the fine-tuning budget is split across the three leads.
		rng := tensor.NewRNG(13)
		for _, d := range leads {
			ft, err := train.FinetuneModel(pre, len(chans), 12)
			if err != nil {
				panic(err)
			}
			tcFT := tc
			tcFT.ResidualChans = chans
			tcFT.TotalSteps = sc.FinetuneSteps / len(leads)
			tcFT.WarmupSteps = tcFT.TotalSteps / 10
			tr := train.NewTrainer(ft, tcFT)
			ds := climate.NewDataset(era, stats, trainStart, trainSteps, leadSteps(d))
			ds.OutputChans = chans
			for s := 0; s < tcFT.TotalSteps; s++ {
				batch := make([]climate.Sample, 0, tc.BatchSize)
				for len(batch) < tc.BatchSize {
					batch = append(batch, ds.At(rng.Intn(ds.Len())))
				}
				tr.Step(batch)
			}
			ts := testSet(d)
			accs := train.EvalACC(tr.Forecaster(), ts, chans, sc.EvalSamples)
			res := Fig9Result{Model: spec.name, LeadDays: d, ACC: map[string]float64{}, Offered: true}
			for i, n := range names {
				res.ACC[n] = accs[i]
			}
			results = append(results, res)
		}
	}

	// --- FourCastNet-like AFNO: single-step training, 1-day rollout ---
	afnoCfg := afno.Tiny(len(vars), sc.Height, sc.Width)
	fcModel := afno.New(afnoCfg, 21)
	opt := fcModel.NewOptimizer(0)
	stepDS := climate.NewDataset(era, stats, trainStart, trainSteps, 1)
	rng := tensor.NewRNG(22)
	for s := 0; s < sc.FinetuneSteps+sc.PretrainSteps; s++ {
		smp := stepDS.At(rng.Intn(stepDS.Len()))
		pred := fcModel.Forward(smp.Input)
		_, grad := metrics.WeightedMSE(pred, smp.Target)
		fcModel.ZeroGrads()
		fcModel.Backward(grad)
		opt.Step(2e-3)
	}
	for _, d := range leads {
		res := Fig9Result{Model: "FourCastNet", LeadDays: d, ACC: map[string]float64{}}
		if d == 1 {
			res.Offered = true
			ts := testSet(1)
			sums := make([]float64, len(chans))
			for i := 0; i < sc.EvalSamples; i++ {
				idx := i * (ts.Len() / sc.EvalSamples)
				clim := ts.NormalizedClimatologyAt(idx, chans)
				smp := ts.At(idx)
				pred := climate.SelectChannels(fcModel.Rollout(smp.Input, leadSteps(1)), chans)
				for c, a := range metrics.WeightedACC(pred, smp.Target, clim) {
					sums[c] += a
				}
			}
			for i, n := range names {
				res.ACC[n] = sums[i] / float64(sc.EvalSamples)
			}
		}
		results = append(results, res)
	}

	// --- IFS-like numerical surrogate, tuned per lead on training
	// data (as operational systems are verified and tuned per
	// forecast horizon) ---
	for _, d := range leads {
		fitDS := climate.NewDataset(era, stats, trainStart, trainSteps, leadSteps(d))
		ifs := baselines.FitIFS(fitDS, 8)
		ts := testSet(d)
		sums := make([]float64, len(chans))
		for i := 0; i < sc.EvalSamples; i++ {
			idx := i * (ts.Len() / sc.EvalSamples)
			clim := ts.NormalizedClimatologyAt(idx, chans)
			smp := ts.At(idx)
			pred := climate.SelectChannels(ifs.Predict(smp.Input, leadSteps(d)), chans)
			for c, a := range metrics.WeightedACC(pred, smp.Target, clim) {
				sums[c] += a
			}
		}
		res := Fig9Result{Model: "IFS", LeadDays: d, ACC: map[string]float64{}, Offered: true}
		for i, n := range names {
			res.ACC[n] = sums[i] / float64(sc.EvalSamples)
		}
		results = append(results, res)
	}
	return results
}

// FormatFig9 renders the skill comparison.
func FormatFig9(results []Fig9Result) string {
	var b strings.Builder
	b.WriteString("Fig. 9 — wACC by model, variable and lead (synthetic ERA5 test year)\n")
	fmt.Fprintf(&b, "%-12s  %5s  %8s  %8s  %8s  %8s\n", "model", "lead", "z500", "t850", "t2m", "u10")
	for _, r := range results {
		if !r.Offered {
			fmt.Fprintf(&b, "%-12s  %4dd  %8s  %8s  %8s  %8s\n", r.Model, r.LeadDays, "-", "-", "-", "-")
			continue
		}
		fmt.Fprintf(&b, "%-12s  %4dd  %8.3f  %8.3f  %8.3f  %8.3f\n", r.Model, r.LeadDays,
			r.ACC["geopotential_500"], r.ACC["temperature_850"], r.ACC["t2m"], r.ACC["u10"])
	}
	b.WriteString("paper: ORBIT ≥ comparators at 14/30 days; competitive at 1 day; FourCastNet offers 1-day only\n")
	return b.String()
}

// MeanACCFor averages a model's wACC over variables at a lead.
func MeanACCFor(results []Fig9Result, model string, leadDays int) (float64, bool) {
	for _, r := range results {
		if r.Model == model && r.LeadDays == leadDays && r.Offered {
			var s float64
			for _, v := range r.ACC {
				s += v
			}
			return s / float64(len(r.ACC)), true
		}
	}
	return 0, false
}

// Fig10Row records the fine-tuning data efficiency of one model size.
type Fig10Row struct {
	Name    string
	Params  int64
	Samples int
}

// Fig10 measures the number of fine-tuning samples each model size
// needs to reach a common forecast-skill target after identical
// pre-training budgets — the paper's data-efficiency result (115M:
// ≈76k, 1B: ≈47k, 10B: ≈32.8k samples on the 30-day task; the scaled
// ladder shows the same downward trend). Substitution: at laptop
// scale the 30-day task saturates at persistence for every size, so
// the measurement runs on the 1-day task, where the same
// size-vs-data-efficiency mechanism is observable.
func Fig10(sc Scale) []Fig10Row {
	vars := climate.RegistrySmall()
	_, chans := fig9Vars(vars)
	corpus := climate.NewPretrainCorpus(vars, sc.Height, sc.Width, climate.CMIP6Sources(), sc.StepsPerSource, 4)
	era := climate.NewWorld(vars, sc.Height, sc.Width, climate.ERA5Source())
	stats := era.EstimateStats(8)
	lead := 1 * climate.StepsPerDay

	ftTrain := climate.NewDataset(era, stats, 0, sc.StepsPerSource*3, lead)
	ftTrain.OutputChans = chans
	ftVal := climate.NewDataset(era, stats, sc.StepsPerSource*3+120, sc.EvalSamples*4, lead)
	ftVal.OutputChans = chans

	var rows []Fig10Row
	sizes := sc.Sizes
	if len(sizes) > 3 {
		sizes = sizes[:3] // the paper measures 115M, 1B, 10B
	}
	allChans := make([]int, len(vars))
	for i := range allChans {
		allChans[i] = i
	}
	for i, embed := range sizes {
		cfg := ladderConfig(sc, len(vars), embed)
		tc := train.DefaultConfig()
		tc.TotalSteps = sc.PretrainSteps + sc.FinetuneSteps
		tc.Seed = 31
		tcPre := tc
		tcPre.ResidualChans = allChans
		pre, _, err := train.Pretrain(cfg, tcPre, corpus, sc.PretrainSteps)
		if err != nil {
			panic(err)
		}
		ft, err := train.FinetuneModel(pre, len(chans), 32)
		if err != nil {
			panic(err)
		}
		tcFT := tc
		tcFT.ResidualChans = chans
		tr := train.NewTrainer(ft, tcFT)
		n := train.SamplesToTarget(tr, ftTrain, ftVal, chans, 0.55, 3, sc.FinetuneSteps)
		rows = append(rows, Fig10Row{Name: sizeName(i), Params: ft.NumParams(), Samples: n})
	}
	return rows
}

// FormatFig10 renders the data-efficiency comparison.
func FormatFig10(rows []Fig10Row) string {
	var b strings.Builder
	b.WriteString("Fig. 10 — fine-tuning samples to reach the common wACC target\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s  %8d params  %6d samples\n", r.Name, r.Params, r.Samples)
	}
	b.WriteString("paper: 115M ≈ 76k, 1B ≈ 47k, 10B ≈ 32.8k — need decreases with size\n")
	return b.String()
}
