// Package experiments regenerates every table and figure of the ORBIT
// paper's evaluation section. The Frontier-scale results (Fig. 5,
// Table I, Fig. 6, Fig. 7) come from the calibrated analytical model
// in internal/perf; the learning results (Fig. 8, Fig. 9, Fig. 10)
// come from real training of scaled-down models on the synthetic
// climate substrate. Each runner returns structured rows and has a
// formatter that prints the same quantities the paper reports.
package experiments

import (
	"fmt"
	"strings"

	"orbit/internal/cluster"
	"orbit/internal/core"
	"orbit/internal/perf"
	"orbit/internal/vit"
)

// Fig5Row is one GPU count of the maximal-model-size comparison.
type Fig5Row struct {
	GPUs   int
	FSDP   int64
	TP     int64
	Hybrid int64
}

// Fig5 computes the maximal trainable model size per strategy from 1
// to 512 GPUs (batch 2, 48 channels — the paper's setting).
func Fig5() []Fig5Row {
	spec := cluster.Frontier()
	opts := core.DefaultOptions()
	var rows []Fig5Row
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512} {
		rows = append(rows, Fig5Row{
			GPUs:   n,
			FSDP:   perf.MaxModelSize(perf.FSDPOnly, n, 48, 2, spec, opts),
			TP:     perf.MaxModelSize(perf.TPOnly, n, 48, 2, spec, opts),
			Hybrid: perf.MaxModelSize(perf.HybridSTOP, n, 48, 2, spec, opts),
		})
	}
	return rows
}

// FormatFig5 renders the Fig. 5 table.
func FormatFig5(rows []Fig5Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 5 — maximal model size by parallelism (48 channels, batch 2)\n")
	fmt.Fprintf(&b, "%6s  %12s  %12s  %12s\n", "GPUs", "FSDP", "TensorPar", "Hybrid-STOP")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d  %11.1fB  %11.1fB  %11.1fB\n",
			r.GPUs, float64(r.FSDP)/1e9, float64(r.TP)/1e9, float64(r.Hybrid)/1e9)
	}
	b.WriteString("paper @512: FSDP ≈ 20B, tensor ≈ 73B, Hybrid-STOP ≈ 143B (largest demonstrated)\n")
	return b.String()
}

// TableIRow is one optimization column of Table I.
type TableIRow struct {
	Name       string
	Opts       core.Options
	MicroBatch int
	OOM        bool
	// Walltime is seconds per observation data point.
	Walltime float64
	// Paper is the published value for comparison (0 for the OOM
	// column).
	Paper float64
}

// TableI reproduces the optimization-ablation walltimes for the 113 B
// model on 512 GPUs (TP 8 × FSDP 64, 48 channels). Micro-batches
// follow the paper's configuration: 1 without activation
// checkpointing, 3 with it (checkpointing frees the memory that makes
// the larger batch fit — the paper's Fig. 6 batch-3 run).
func TableI() []TableIRow {
	spec := cluster.Frontier()
	shape := perf.FromConfig(vit.ORBIT113B)
	layout := core.Layout{TP: 8, FSDP: 64, DDP: 1}
	rows := []TableIRow{
		{Name: "none", Opts: core.Options{}, MicroBatch: 1},
		{Name: "+layer wrapping", Opts: core.Options{LayerWrapping: true}, MicroBatch: 1, Paper: 0.97},
		{Name: "+mixed precision", Opts: core.Options{LayerWrapping: true, MixedPrecision: true}, MicroBatch: 1, Paper: 0.49},
		{Name: "+prefetching", Opts: core.Options{LayerWrapping: true, MixedPrecision: true, Prefetch: true}, MicroBatch: 1, Paper: 0.40},
		{Name: "+activation ckpt", Opts: core.DefaultOptions(), MicroBatch: 3, Paper: 0.17},
	}
	for i := range rows {
		plan := perf.Plan{Layout: layout, Opts: rows[i].Opts, MicroBatch: rows[i].MicroBatch}
		if !perf.Fits(shape, perf.HybridSTOP, plan, spec) {
			rows[i].OOM = true
			continue
		}
		rows[i].Walltime = perf.Step(shape, plan, spec, 0).TimePerSample()
	}
	return rows
}

// FormatTableI renders the ablation table.
func FormatTableI(rows []TableIRow) string {
	var b strings.Builder
	b.WriteString("Table I — 113B walltime per observation, 512 GPUs (TP 8 × FSDP 64)\n")
	fmt.Fprintf(&b, "%-18s  %10s  %10s\n", "optimizations", "model", "paper")
	for _, r := range rows {
		if r.OOM {
			fmt.Fprintf(&b, "%-18s  %10s  %10s\n", r.Name, "OOM", "OOM")
			continue
		}
		fmt.Fprintf(&b, "%-18s  %9.2fs  %9.2fs\n", r.Name, r.Walltime, r.Paper)
	}
	return b.String()
}

// Fig6Row is one parallelism configuration of the Fig. 6 sweep.
type Fig6Row struct {
	TP, FSDP   int
	OOM        bool
	Walltime   float64 // seconds per observation
	MemoryGB   float64 // peak per GPU
	MicroBatch int
}

// Fig6 sweeps FSDP×TP group-size combinations for the 113 B model on
// 512 GPUs with DDP = 1, reporting walltime and memory (the paper's
// optimum is FSDP 64 × TP 8 at ≈0.33 s with batch 3).
func Fig6() []Fig6Row {
	spec := cluster.Frontier()
	shape := perf.FromConfig(vit.ORBIT113B)
	opts := core.DefaultOptions()
	var rows []Fig6Row
	for tp := 1; tp <= 256; tp *= 2 {
		fsdp := 512 / tp
		if fsdp < 1 {
			continue
		}
		row := Fig6Row{TP: tp, FSDP: fsdp}
		// The TP=1 extreme is "FSDP alone", which behaves like vanilla
		// FSDP and runs out of memory on the 113 B model, exactly as
		// the paper reports for Fig. 6's edge. TP beyond the head
		// count is legal for Hybrid-STOP (Eqn. 2 shards arbitrary
		// matrix columns), just slow across nodes.
		strat := perf.HybridSTOP
		if tp == 1 {
			strat = perf.FSDPOnly
			plan := perf.Plan{Layout: core.Layout{TP: 1, FSDP: fsdp, DDP: 1}, Opts: opts, MicroBatch: 1}
			plan.Opts.LayerWrapping = false
			if !perf.Fits(shape, strat, plan, spec) {
				row.OOM = true
				rows = append(rows, row)
				continue
			}
		}
		plan := perf.Plan{Layout: core.Layout{TP: tp, FSDP: fsdp, DDP: 1}, Opts: opts, MicroBatch: 1}
		if !perf.Fits(shape, strat, plan, spec) {
			row.OOM = true
			rows = append(rows, row)
			continue
		}
		mb := perf.MaxMicroBatch(shape, strat, plan, spec)
		if mb > 3 {
			mb = 3 // the paper's best configuration used batch 3
		}
		plan.MicroBatch = mb
		row.MicroBatch = mb
		row.Walltime = perf.Step(shape, plan, spec, 0).TimePerSample()
		row.MemoryGB = perf.MemoryPerGPU(shape, strat, plan, spec) / (1 << 30)
		rows = append(rows, row)
	}
	return rows
}

// FormatFig6 renders the configuration sweep.
func FormatFig6(rows []Fig6Row) string {
	var b strings.Builder
	b.WriteString("Fig. 6 — 113B on 512 GPUs: time & memory vs (FSDP × TP) group sizes\n")
	fmt.Fprintf(&b, "%6s  %6s  %6s  %12s  %10s\n", "FSDP", "TP", "batch", "s/sample", "mem GB")
	for _, r := range rows {
		if r.OOM {
			fmt.Fprintf(&b, "%6d  %6d  %6s  %12s  %10s\n", r.FSDP, r.TP, "-", "OOM", "-")
			continue
		}
		fmt.Fprintf(&b, "%6d  %6d  %6d  %12.3f  %10.1f\n", r.FSDP, r.TP, r.MicroBatch, r.Walltime, r.MemoryGB)
	}
	b.WriteString("paper: fastest 0.33 s/sample at FSDP 64 × TP 8 (batch 3); OOM at either extreme\n")
	return b.String()
}

// Fig7Row is one (model, GPU-count) point of the strong-scaling study.
type Fig7Row struct {
	Model      string
	Channels   int
	GPUs       int
	TimePerObs float64
	Efficiency float64
	PFLOPS     float64
}

// Fig7 computes strong-scaling efficiency and time-to-solution from
// 512 to 49,152 GPUs for all four model sizes at the given channel
// count (48 for Fig. 7a, 91 for Fig. 7b).
func Fig7(channels int) []Fig7Row {
	spec := cluster.Frontier()
	opts := core.DefaultOptions()
	gpuCounts := []int{512, 1024, 2048, 4096, 8192, 16384, 32768, 49152}
	var rows []Fig7Row
	for _, cfg := range vit.PaperConfigs() {
		c := cfg.WithChannels(channels)
		shape := perf.FromConfig(c)
		basePlan := perf.DefaultPlanFor(shape, 512, spec, opts)
		base := perf.Step(shape, basePlan, spec, 0)
		for _, n := range gpuCounts {
			plan := perf.DefaultPlanFor(shape, n, spec, opts)
			b := perf.Step(shape, plan, spec, 0)
			rows = append(rows, Fig7Row{
				Model:      cfg.Name,
				Channels:   channels,
				GPUs:       n,
				TimePerObs: b.TimePerSample(),
				Efficiency: perf.StrongScalingEfficiency(base.TimePerSample(), 512, b.TimePerSample(), n),
				PFLOPS:     perf.SustainedFLOPS(perf.TrainFLOPs(shape, opts), b) / 1e15,
			})
		}
	}
	return rows
}

// FormatFig7 renders the strong-scaling series.
func FormatFig7(rows []Fig7Row) string {
	var b strings.Builder
	if len(rows) > 0 {
		fmt.Fprintf(&b, "Fig. 7 — strong scaling, %d channels (T = s/observation, E vs 512 GPUs)\n", rows[0].Channels)
	}
	fmt.Fprintf(&b, "%-12s  %6s  %10s  %6s  %8s\n", "model", "GPUs", "T", "E", "PFLOPS")
	last := ""
	for _, r := range rows {
		if r.Model != last {
			last = r.Model
			b.WriteString("\n")
		}
		fmt.Fprintf(&b, "%-12s  %6d  %10.2e  %5.0f%%  %8.0f\n", r.Model, r.GPUs, r.TimePerObs, r.Efficiency*100, r.PFLOPS)
	}
	b.WriteString("\npaper @49,152 GPUs: E ∈ [44,82]% (48ch) / [41,85]% (91ch); 10B ≈ 1e-4 s (1.6 EF); 113B ≈ 3e-3 s (684 PF)\n")
	return b.String()
}
