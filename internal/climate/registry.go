// Package climate provides the Earth-system data substrate for ORBIT:
// the 91-variable registry (3 static, 3 surface, 85 atmospheric
// variables on 17 pressure levels, paper Sec. IV "Pre-training
// Dataset"), a procedural climate-dynamics generator that stands in
// for the CMIP6 multi-model archive and the ERA5 reanalysis (which are
// multi-petabyte external datasets unavailable to an offline build),
// and dataset/loader types that mirror the paper's training setup: ten
// CMIP6-like sources with distinct model biases for pre-training, one
// reanalysis-like source for fine-tuning, 6-hourly sampling, and
// z-score normalization per variable.
//
// The generated dynamics are deterministic, smooth, seasonally forced
// advected wave fields plus source-dependent bias and noise, so (a)
// any time step is random-access computable, (b) the next state is
// genuinely predictable from the current one (models can learn), and
// (c) skill degrades with lead time (forecast difficulty is real).
package climate

import "fmt"

// VarKind classifies a variable the way the paper does.
type VarKind int

// Variable kinds: constant fields, single-level surface fields, and
// upper-air fields on pressure levels.
const (
	Static VarKind = iota
	Surface
	Atmospheric
)

// Variable describes one channel of the input tensor.
type Variable struct {
	Name string
	Kind VarKind
	// Level is the pressure level in hPa for atmospheric variables,
	// 0 otherwise.
	Level int
	// Physics seeds the generator so each variable has distinct
	// spatial structure.
	Physics PhysicsParams
}

// PhysicsParams control the procedural generator for one variable.
type PhysicsParams struct {
	// BaseMean and PoleDrop define the zonal-mean profile: value
	// BaseMean at the equator dropping by PoleDrop at the poles.
	BaseMean float64
	PoleDrop float64
	// SeasonalAmp scales the annual cycle.
	SeasonalAmp float64
	// WaveAmp scales the travelling planetary waves (the predictable
	// anomaly signal).
	WaveAmp float64
	// NoiseAmp scales the unpredictable high-frequency component.
	NoiseAmp float64
	// ZonalSpeed is the wave phase speed in grid-fraction per day
	// (positive = eastward), giving each variable its own advection.
	ZonalSpeed float64
}

// The 17 CMIP6 pressure levels used for the 91-variable set.
var pressureLevels17 = []int{10, 20, 30, 50, 70, 100, 150, 200, 250, 300, 400, 500, 600, 700, 850, 925, 1000}

// The 7 levels used by the ClimaX-style 48-variable set.
var pressureLevels7 = []int{50, 250, 500, 600, 700, 850, 925}

// atmosSpec describes one upper-air variable family.
type atmosSpec struct {
	name    string
	physics PhysicsParams
}

var atmosFamilies = []atmosSpec{
	{"geopotential", PhysicsParams{BaseMean: 54000, PoleDrop: 6000, SeasonalAmp: 800, WaveAmp: 1200, NoiseAmp: 120, ZonalSpeed: 0.08}},
	{"temperature", PhysicsParams{BaseMean: 260, PoleDrop: 50, SeasonalAmp: 12, WaveAmp: 6, NoiseAmp: 0.8, ZonalSpeed: 0.06}},
	{"u_wind", PhysicsParams{BaseMean: 8, PoleDrop: 12, SeasonalAmp: 4, WaveAmp: 9, NoiseAmp: 1.2, ZonalSpeed: 0.10}},
	{"v_wind", PhysicsParams{BaseMean: 0, PoleDrop: 2, SeasonalAmp: 2, WaveAmp: 7, NoiseAmp: 1.2, ZonalSpeed: 0.10}},
	{"specific_humidity", PhysicsParams{BaseMean: 0.006, PoleDrop: 0.005, SeasonalAmp: 0.002, WaveAmp: 0.0015, NoiseAmp: 0.0003, ZonalSpeed: 0.05}},
	{"relative_humidity", PhysicsParams{BaseMean: 60, PoleDrop: 20, SeasonalAmp: 10, WaveAmp: 12, NoiseAmp: 2.5, ZonalSpeed: 0.05}},
}

var staticVars = []Variable{
	{Name: "land_sea_mask", Kind: Static, Physics: PhysicsParams{BaseMean: 0.3, PoleDrop: -0.2, WaveAmp: 0.5}},
	{Name: "orography", Kind: Static, Physics: PhysicsParams{BaseMean: 400, PoleDrop: 200, WaveAmp: 900}},
	{Name: "soil_type", Kind: Static, Physics: PhysicsParams{BaseMean: 3, PoleDrop: 2, WaveAmp: 2}},
}

var surfaceVars = []Variable{
	{Name: "t2m", Kind: Surface, Physics: PhysicsParams{BaseMean: 288, PoleDrop: 45, SeasonalAmp: 12, WaveAmp: 5, NoiseAmp: 0.9, ZonalSpeed: 0.05}},
	{Name: "u10", Kind: Surface, Physics: PhysicsParams{BaseMean: 3, PoleDrop: 5, SeasonalAmp: 2, WaveAmp: 6, NoiseAmp: 1.1, ZonalSpeed: 0.09}},
	{Name: "v10", Kind: Surface, Physics: PhysicsParams{BaseMean: 0, PoleDrop: 1, SeasonalAmp: 1.5, WaveAmp: 5, NoiseAmp: 1.1, ZonalSpeed: 0.09}},
}

// levelScale attenuates wave amplitude with altitude so levels differ.
func levelScale(level int) float64 {
	return 0.5 + 0.5*float64(level)/1000
}

// buildAtmos expands variable families over pressure levels.
func buildAtmos(families []atmosSpec, levels []int) []Variable {
	vars := make([]Variable, 0, len(families)*len(levels))
	for _, f := range families {
		for _, lv := range levels {
			p := f.physics
			s := levelScale(lv)
			p.WaveAmp *= s
			p.SeasonalAmp *= s
			vars = append(vars, Variable{
				Name:    fmt.Sprintf("%s_%d", f.name, lv),
				Kind:    Atmospheric,
				Level:   lv,
				Physics: p,
			})
		}
	}
	return vars
}

// Registry91 returns the full ORBIT variable set: 3 static + 3 surface
// + 5 families × 17 levels = 91 channels.
func Registry91() []Variable {
	vars := append([]Variable{}, staticVars...)
	vars = append(vars, surfaceVars...)
	vars = append(vars, buildAtmos(atmosFamilies[:5], pressureLevels17)...)
	return vars
}

// Registry48 returns the ClimaX-style variable set: 3 static +
// 3 surface + 6 families × 7 levels = 48 channels.
func Registry48() []Variable {
	vars := append([]Variable{}, staticVars...)
	vars = append(vars, surfaceVars...)
	vars = append(vars, buildAtmos(atmosFamilies, pressureLevels7)...)
	return vars
}

// RegistrySmall returns a reduced set for unit tests and examples:
// 1 static + 3 surface + 2 families × 2 levels = 8 channels.
func RegistrySmall() []Variable {
	vars := []Variable{staticVars[0]}
	vars = append(vars, surfaceVars...)
	vars = append(vars, buildAtmos(atmosFamilies[:2], []int{500, 850})...)
	return vars
}

// IndexOf returns the channel index of the named variable, or -1.
func IndexOf(vars []Variable, name string) int {
	for i, v := range vars {
		if v.Name == name {
			return i
		}
	}
	return -1
}

// FineTuneOutputs is the set of output variables evaluated in the
// paper's Fig. 9: geopotential at 500 hPa, temperature at 850 hPa,
// 2-metre temperature and 10-metre zonal wind.
var FineTuneOutputs = []string{"geopotential_500", "temperature_850", "t2m", "u10"}
