package climate

import (
	"math"
	"testing"
	"testing/quick"

	"orbit/internal/tensor"
)

func TestRegistrySizes(t *testing.T) {
	if n := len(Registry91()); n != 91 {
		t.Errorf("Registry91 has %d variables, want 91", n)
	}
	if n := len(Registry48()); n != 48 {
		t.Errorf("Registry48 has %d variables, want 48", n)
	}
	if n := len(RegistrySmall()); n != 8 {
		t.Errorf("RegistrySmall has %d variables, want 8", n)
	}
}

func TestRegistry91Composition(t *testing.T) {
	var static, surface, atmos int
	for _, v := range Registry91() {
		switch v.Kind {
		case Static:
			static++
		case Surface:
			surface++
		case Atmospheric:
			atmos++
		}
	}
	if static != 3 || surface != 3 || atmos != 85 {
		t.Errorf("composition static=%d surface=%d atmos=%d, want 3/3/85", static, surface, atmos)
	}
}

func TestRegistryNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, v := range Registry91() {
		if seen[v.Name] {
			t.Fatalf("duplicate variable %q", v.Name)
		}
		seen[v.Name] = true
	}
}

func TestFineTuneOutputsExist(t *testing.T) {
	vars := Registry91()
	for _, name := range FineTuneOutputs {
		if IndexOf(vars, name) < 0 {
			t.Errorf("fine-tune output %q missing from Registry91", name)
		}
	}
	// And in the 48-variable set too.
	vars48 := Registry48()
	for _, name := range FineTuneOutputs {
		if IndexOf(vars48, name) < 0 {
			t.Errorf("fine-tune output %q missing from Registry48", name)
		}
	}
}

func TestCMIP6SourcesDistinct(t *testing.T) {
	srcs := CMIP6Sources()
	if len(srcs) != 10 {
		t.Fatalf("%d sources, want 10", len(srcs))
	}
	seeds := map[uint64]bool{}
	for _, s := range srcs {
		if seeds[s.Seed] {
			t.Fatalf("duplicate seed %d", s.Seed)
		}
		seeds[s.Seed] = true
	}
}

func newTestWorld() *World {
	return NewWorld(RegistrySmall(), 16, 32, ERA5Source())
}

func TestWorldDeterministic(t *testing.T) {
	w1 := newTestWorld()
	w2 := newTestWorld()
	f1 := w1.Field(100)
	f2 := w2.Field(100)
	if !tensor.AllClose(f1, f2, 0, 0) {
		t.Error("same world parameters must generate identical fields")
	}
}

func TestWorldFieldsEvolve(t *testing.T) {
	w := newTestWorld()
	f0 := w.Field(0)
	f1 := w.Field(1)
	if tensor.AllClose(f0, f1, 1e-9, 1e-9) {
		t.Error("fields should change between time steps")
	}
}

func TestStaticVariablesFrozen(t *testing.T) {
	w := newTestWorld()
	f0 := w.Field(0)
	f1 := w.Field(1000)
	hw := 16 * 32
	// Channel 0 is the static land_sea_mask.
	for i := 0; i < hw; i++ {
		if f0.Data()[i] != f1.Data()[i] {
			t.Fatal("static variable changed over time")
		}
	}
}

func TestWorldTemporalContinuity(t *testing.T) {
	// Consecutive 6-hour states must be much closer than states a
	// month apart — otherwise there is nothing to forecast.
	w := newTestWorld()
	f0 := w.Field(0)
	f1 := w.Field(1)
	f120 := w.Field(120)
	near := tensor.MaxDiff(f0, f1)
	far := tensor.MaxDiff(f0, f120)
	if near >= far {
		t.Errorf("6h diff %v should be < 30d diff %v", near, far)
	}
}

func TestSourcesDiffer(t *testing.T) {
	vars := RegistrySmall()
	srcs := CMIP6Sources()
	w1 := NewWorld(vars, 8, 16, srcs[0])
	w2 := NewWorld(vars, 8, 16, srcs[1])
	if tensor.AllClose(w1.Field(0), w2.Field(0), 1e-6, 1e-6) {
		t.Error("different sources should produce different fields")
	}
}

func TestStatsNormalizeRoundTrip(t *testing.T) {
	w := newTestWorld()
	stats := w.EstimateStats(8)
	f := w.Field(37)
	orig := f.Clone()
	stats.Normalize(f)
	// Normalized fields should be O(1).
	if f.MaxAbs() > 25 {
		t.Errorf("normalized field max %v, want O(1)", f.MaxAbs())
	}
	chans := make([]int, len(w.Vars))
	for i := range chans {
		chans[i] = i
	}
	stats.Denormalize(f, chans)
	if !tensor.AllClose(f, orig, 1e-3, 1e-3) {
		t.Errorf("denormalize(normalize) drift %v", tensor.MaxDiff(f, orig))
	}
}

func TestStatsReasonableForT2M(t *testing.T) {
	w := NewWorld(Registry48(), 8, 16, ERA5Source())
	stats := w.EstimateStats(8)
	i := IndexOf(w.Vars, "t2m")
	if stats.Mean[i] < 230 || stats.Mean[i] > 320 {
		t.Errorf("t2m mean %v K implausible", stats.Mean[i])
	}
	if stats.Std[i] <= 0 {
		t.Errorf("t2m std %v", stats.Std[i])
	}
}

func TestDatasetSampleShapes(t *testing.T) {
	w := newTestWorld()
	stats := w.EstimateStats(4)
	ds := NewDataset(w, stats, 0, 10, 4)
	s := ds.At(3)
	if s.Input.Dim(0) != 8 || s.Input.Dim(1) != 16 || s.Input.Dim(2) != 32 {
		t.Fatalf("input shape %v", s.Input.Shape())
	}
	if !s.Input.SameShape(s.Target) {
		t.Fatal("full-state target shape mismatch")
	}
	if s.LeadHours != 24 {
		t.Errorf("lead = %v hours, want 24", s.LeadHours)
	}
}

func TestDatasetOutputChannelSubset(t *testing.T) {
	w := newTestWorld()
	stats := w.EstimateStats(4)
	ds := NewDataset(w, stats, 0, 10, 4)
	ds.OutputChans = []int{1, 3}
	s := ds.At(0)
	if s.Target.Dim(0) != 2 {
		t.Fatalf("target channels %d, want 2", s.Target.Dim(0))
	}
	// Channel 0 of target equals channel 1 of a full render.
	full := ds.World.Field(ds.StartStep + ds.LeadSteps)
	ds.Stats.Normalize(full)
	want := SelectChannels(full, []int{1, 3})
	if !tensor.AllClose(s.Target, want, 1e-6, 1e-6) {
		t.Error("SelectChannels target mismatch")
	}
}

func TestDatasetIndexOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	w := newTestWorld()
	NewDataset(w, w.EstimateStats(2), 0, 5, 1).At(5)
}

func TestPretrainCorpusInterleaves(t *testing.T) {
	corpus := NewPretrainCorpus(RegistrySmall(), 8, 16, CMIP6Sources()[:3], 4, 1)
	if corpus.Len() != 12 {
		t.Fatalf("corpus len %d, want 12", corpus.Len())
	}
	// Samples 0,1,2 come from different sources: their (dynamic)
	// fields must differ.
	s0 := corpus.At(0)
	s1 := corpus.At(1)
	if tensor.AllClose(s0.Input, s1.Input, 1e-6, 1e-6) {
		t.Error("adjacent corpus samples should come from different sources")
	}
}

func TestClimatologyCloseToTimeMean(t *testing.T) {
	w := newTestWorld()
	clim := w.Climatology()
	// Average many samples over a full year: waves/season/noise are
	// zero-mean so the empirical mean approaches the climatology.
	mean := tensor.New(8, 16, 32)
	const n = 120
	for i := 0; i < n; i++ {
		mean.AddInPlace(w.Field(i * (365 * StepsPerDay / n)))
	}
	mean.ScaleInPlace(1.0 / n)
	// Compare on a dynamic channel (t2m = channel 1) in units of its
	// wave amplitude.
	hw := 16 * 32
	var worst float64
	for i := hw; i < 2*hw; i++ {
		d := math.Abs(float64(mean.Data()[i]) - float64(clim.Data()[i]))
		if d > worst {
			worst = d
		}
	}
	amp := w.Vars[1].Physics.WaveAmp + w.Vars[1].Physics.SeasonalAmp
	if worst > 0.5*amp {
		t.Errorf("climatology deviates from empirical mean by %v (amp %v)", worst, amp)
	}
}

func TestShardPartitionsSamples(t *testing.T) {
	prop := func(seed uint64, ranksSel uint8) bool {
		ranks := 1 + int(ranksSel)%4
		n := 32
		seen := map[int]int{}
		for r := 0; r < ranks; r++ {
			for _, i := range Shard(n, r, ranks, seed) {
				seen[i]++
			}
		}
		// Every index assigned at most once, and per-rank counts equal.
		total := 0
		for idx, c := range seen {
			if c != 1 || idx < 0 || idx >= n {
				return false
			}
			total++
		}
		return total == (n/ranks)*ranks
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestShardDeterministic(t *testing.T) {
	a := Shard(16, 1, 2, 7)
	b := Shard(16, 1, 2, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Shard not deterministic")
		}
	}
}
