package climate

import (
	"math"

	"orbit/internal/tensor"
)

// Source describes one data source: a CMIP6-participating model (for
// pre-training) or a reanalysis (for fine-tuning). Each source shares
// the same underlying dynamics but has its own bias, amplitude error
// and internal-variability phase — the structure that makes CMIP6 a
// multi-model ensemble.
type Source struct {
	Name string
	// Seed decorrelates the source's internal variability.
	Seed uint64
	// Bias is an additive offset in units of the variable's wave
	// amplitude (systematic model error).
	Bias float64
	// AmpScale multiplies anomaly amplitudes (models disagree on
	// variability strength).
	AmpScale float64
	// NoiseScale multiplies unpredictable noise.
	NoiseScale float64
}

// CMIP6Sources returns the ten pre-training sources named in the
// paper (MPI-ESM, AWI-ESM, HAMMOZ, CMCC, TAI-ESM, NOR, EC, MIRO, MRI,
// NESM), each with a distinct synthetic model error.
func CMIP6Sources() []Source {
	names := []string{"MPI-ESM", "AWI-ESM", "HAMMOZ", "CMCC", "TAI-ESM", "NOR", "EC", "MIRO", "MRI", "NESM"}
	sources := make([]Source, len(names))
	for i, n := range names {
		sources[i] = Source{
			Name:       n,
			Seed:       uint64(1000 + 7919*i),
			Bias:       0.25 * math.Sin(float64(i)*1.7),
			AmpScale:   0.85 + 0.04*float64(i%8),
			NoiseScale: 0.8 + 0.06*float64(i%5),
		}
	}
	return sources
}

// ERA5Source returns the reanalysis-like source used for fine-tuning
// and evaluation: unbiased, unit amplitude, its own variability seed.
func ERA5Source() Source {
	return Source{Name: "ERA5", Seed: 424242, Bias: 0, AmpScale: 1, NoiseScale: 1}
}

// World generates climate fields on an equiangular lat-lon grid. All
// fields are closed-form functions of time, so any 6-hourly step is
// random-access computable and exactly reproducible.
type World struct {
	Vars   []Variable
	Height int
	Width  int
	Source Source

	// Per-variable per-wave parameters derived from the source seed.
	waves [][]waveParam
	// noise modes per variable
	noise [][]noiseMode
}

// waveParam is one travelling planetary wave component.
type waveParam struct {
	zonalWavenumber int
	meridionalMode  int
	amp             float64
	phase           float64
	speed           float64 // radians of longitude per day
}

// noiseMode is one slow, smooth pseudo-noise component; many
// incommensurate modes sum to a red-noise-like field that is still a
// deterministic function of time.
type noiseMode struct {
	kx, ky int
	amp    float64
	phaseX float64
	freq   float64 // radians per day, intentionally fast
}

const wavesPerVar = 4
const noisePerVar = 6

// StepsPerDay is the paper's 6-hourly sampling.
const StepsPerDay = 4

// NewWorld builds a generator for the given variable set, grid and
// source.
func NewWorld(vars []Variable, height, width int, src Source) *World {
	w := &World{Vars: vars, Height: height, Width: width, Source: src}
	rng := tensor.NewRNG(src.Seed)
	for vi, v := range vars {
		vrng := tensor.NewRNG(rng.Uint64() ^ uint64(vi*2654435761))
		ws := make([]waveParam, wavesPerVar)
		for k := range ws {
			ws[k] = waveParam{
				zonalWavenumber: 1 + vrng.Intn(5),
				meridionalMode:  1 + vrng.Intn(3),
				amp:             v.Physics.WaveAmp * (0.4 + 0.6*vrng.Float64()) * src.AmpScale / wavesPerVar * 2,
				phase:           2 * math.Pi * vrng.Float64(),
				// Strongly dispersive: wave speeds spread 0.4–1.6× so
				// a single advection velocity cannot track all modes
				// at long leads (each mode's rotation remains exactly
				// learnable by a sufficiently trained model).
				speed: 2 * math.Pi * v.Physics.ZonalSpeed * (0.4 + 1.2*vrng.Float64()),
			}
		}
		w.waves = append(w.waves, ws)
		ns := make([]noiseMode, noisePerVar)
		for k := range ns {
			ns[k] = noiseMode{
				kx:     1 + vrng.Intn(8),
				ky:     1 + vrng.Intn(6),
				amp:    v.Physics.NoiseAmp * src.NoiseScale * (0.5 + vrng.Float64()) / noisePerVar * 2.5,
				phaseX: 2 * math.Pi * vrng.Float64(),
			}
			if k%2 == 0 {
				// Fast band: period 12–24 h. Unpredictable at any lead.
				ns[k].freq = 2*math.Pi*2 + 4*math.Pi*vrng.Float64()
			} else {
				// Synoptic band: period 8–30 d with doubled amplitude.
				// Nearly frozen over one day (easy) but rotated by many
				// radians after 30 days (hard) — the mechanism that
				// makes forecast skill decay with lead time.
				ns[k].freq = 2 * math.Pi / (8 + 22*vrng.Float64())
				ns[k].amp *= 2.5
			}
		}
		w.noise = append(w.noise, ns)
	}
	return w
}

// value computes variable vi at grid point (row, col) and time step
// (6-hourly index).
func (w *World) value(vi, row, col, step int) float64 {
	v := &w.Vars[vi]
	days := float64(step) / StepsPerDay
	lat := -math.Pi/2 + (float64(row)+0.5)*math.Pi/float64(w.Height)
	lon := 2 * math.Pi * float64(col) / float64(w.Width)

	// Zonal-mean climatology: equator-to-pole gradient.
	val := v.Physics.BaseMean - v.Physics.PoleDrop*math.Pow(math.Sin(lat), 2)

	if v.Kind == Static {
		// Static fields: frozen "geography" from the wave components.
		for _, wp := range w.waves[vi] {
			val += wp.amp * math.Sin(float64(wp.zonalWavenumber)*lon+wp.phase) *
				math.Cos(float64(wp.meridionalMode)*lat)
		}
		return val
	}

	// Annual cycle, antisymmetric across hemispheres (seasons flip).
	season := math.Sin(2*math.Pi*days/365.25) * math.Sin(lat)
	val += v.Physics.SeasonalAmp * season * w.Source.AmpScale

	// Travelling waves: the predictable anomaly signal.
	for _, wp := range w.waves[vi] {
		env := math.Cos(lat) * math.Cos(float64(wp.meridionalMode)*lat)
		val += wp.amp * env * math.Sin(float64(wp.zonalWavenumber)*lon-wp.speed*days+wp.phase)
	}

	// Fast smooth pseudo-noise: hard to predict at long leads.
	for _, nm := range w.noise[vi] {
		val += nm.amp * math.Sin(float64(nm.kx)*lon+nm.phaseX+nm.freq*days) *
			math.Sin(float64(nm.ky)*(lat+math.Pi/2))
	}

	// Systematic source bias, scaled by the variable's wave amplitude.
	val += w.Source.Bias * v.Physics.WaveAmp
	return val
}

// Field renders all channels at one time step: [C, H, W].
func (w *World) Field(step int) *tensor.Tensor {
	out := tensor.New(len(w.Vars), w.Height, w.Width)
	d := out.Data()
	i := 0
	for vi := range w.Vars {
		for r := 0; r < w.Height; r++ {
			for c := 0; c < w.Width; c++ {
				d[i] = float32(w.value(vi, r, c, step))
				i++
			}
		}
	}
	return out
}

// Climatology returns the per-channel time-mean field used by the
// wACC metric: the zonal-mean profile plus static geography, i.e. the
// generator with seasonal, wave and noise terms averaged out (they are
// all zero-mean in time).
func (w *World) Climatology() *tensor.Tensor {
	out := tensor.New(len(w.Vars), w.Height, w.Width)
	d := out.Data()
	i := 0
	for vi := range w.Vars {
		v := &w.Vars[vi]
		for r := 0; r < w.Height; r++ {
			lat := -math.Pi/2 + (float64(r)+0.5)*math.Pi/float64(w.Height)
			base := v.Physics.BaseMean - v.Physics.PoleDrop*math.Pow(math.Sin(lat), 2) + w.Source.Bias*v.Physics.WaveAmp
			for c := 0; c < w.Width; c++ {
				val := base
				if v.Kind == Static {
					val = w.value(vi, r, c, 0) - w.Source.Bias*v.Physics.WaveAmp
				}
				d[i] = float32(val)
				i++
			}
		}
	}
	return out
}

// ClimatologyAt returns the climatology including the annual cycle at
// the given time step — the day-of-year climatology WeatherBench-style
// wACC evaluation subtracts, so the trivially predictable seasonal
// march does not count as forecast skill.
func (w *World) ClimatologyAt(step int) *tensor.Tensor {
	out := w.Climatology()
	days := float64(step) / StepsPerDay
	d := out.Data()
	i := 0
	for vi := range w.Vars {
		v := &w.Vars[vi]
		if v.Kind == Static {
			i += w.Height * w.Width
			continue
		}
		for r := 0; r < w.Height; r++ {
			lat := -math.Pi/2 + (float64(r)+0.5)*math.Pi/float64(w.Height)
			season := v.Physics.SeasonalAmp * math.Sin(2*math.Pi*days/365.25) * math.Sin(lat) * w.Source.AmpScale
			for c := 0; c < w.Width; c++ {
				d[i] += float32(season)
				i++
			}
		}
	}
	return out
}

// Stats returns per-channel normalization statistics (mean and
// standard deviation) estimated from a sample of time steps.
type Stats struct {
	Mean, Std []float64
}

// EstimateStats samples `samples` time steps spread over a year and
// computes per-channel mean and std for z-score normalization.
func (w *World) EstimateStats(samples int) *Stats {
	c := len(w.Vars)
	mean := make([]float64, c)
	m2 := make([]float64, c)
	n := 0
	stride := 365 * StepsPerDay / samples
	if stride < 1 {
		stride = 1
	}
	for s := 0; s < samples; s++ {
		f := w.Field(s * stride)
		hw := w.Height * w.Width
		for vi := 0; vi < c; vi++ {
			for _, v := range f.Data()[vi*hw : (vi+1)*hw] {
				mean[vi] += float64(v)
				m2[vi] += float64(v) * float64(v)
			}
		}
		n += hw
	}
	std := make([]float64, c)
	for vi := 0; vi < c; vi++ {
		mean[vi] /= float64(n)
		variance := m2[vi]/float64(n) - mean[vi]*mean[vi]
		if variance < 1e-12 {
			variance = 1e-12
		}
		std[vi] = math.Sqrt(variance)
	}
	return &Stats{Mean: mean, Std: std}
}

// Normalize z-scores a field [C, H, W] in place using the stats.
func (s *Stats) Normalize(f *tensor.Tensor) {
	c := f.Dim(0)
	hw := f.Dim(1) * f.Dim(2)
	d := f.Data()
	for vi := 0; vi < c; vi++ {
		m, inv := float32(s.Mean[vi]), float32(1/s.Std[vi])
		for i := vi * hw; i < (vi+1)*hw; i++ {
			d[i] = (d[i] - m) * inv
		}
	}
}

// Denormalize inverts Normalize for the given channel subset mapping:
// channel i of f corresponds to stats index chans[i].
func (s *Stats) Denormalize(f *tensor.Tensor, chans []int) {
	hw := f.Dim(1) * f.Dim(2)
	d := f.Data()
	for i, src := range chans {
		m, std := float32(s.Mean[src]), float32(s.Std[src])
		for j := i * hw; j < (i+1)*hw; j++ {
			d[j] = d[j]*std + m
		}
	}
}
