package climate

import (
	"fmt"

	"orbit/internal/tensor"
)

// Sample is one training example: an input state, the target state
// LeadHours later, and the lead time for model conditioning. Fields
// are normalized [C, H, W] tensors.
type Sample struct {
	Input     *tensor.Tensor
	Target    *tensor.Tensor
	LeadHours float64
}

// Dataset serves normalized forecast pairs from one source. It
// mirrors the paper's setup: 6-hourly observation points; pre-training
// predicts the full state at a (possibly randomized) lead; fine-tuning
// predicts a selected output-variable subset at fixed leads.
type Dataset struct {
	World *World
	Stats *Stats
	// StartStep and Steps bound the usable time range (e.g. the
	// train/val/test year split of the fine-tuning data).
	StartStep, Steps int
	// LeadSteps is the forecast horizon in 6-hour steps.
	LeadSteps int
	// OutputChans selects target channels; nil means all channels.
	OutputChans []int
}

// NewDataset builds a dataset over [startStep, startStep+steps).
func NewDataset(w *World, stats *Stats, startStep, steps, leadSteps int) *Dataset {
	return &Dataset{World: w, Stats: stats, StartStep: startStep, Steps: steps, LeadSteps: leadSteps}
}

// Len returns the number of usable samples.
func (d *Dataset) Len() int { return d.Steps }

// At materializes sample i: input at step StartStep+i, target at
// +LeadSteps, both normalized; the target restricted to OutputChans
// when set.
func (d *Dataset) At(i int) Sample {
	if i < 0 || i >= d.Steps {
		panic(fmt.Sprintf("climate: sample index %d out of range %d", i, d.Steps))
	}
	step := d.StartStep + i
	in := d.World.Field(step)
	d.Stats.Normalize(in)
	tgt := d.World.Field(step + d.LeadSteps)
	d.Stats.Normalize(tgt)
	if d.OutputChans != nil {
		tgt = SelectChannels(tgt, d.OutputChans)
	}
	return Sample{Input: in, Target: tgt, LeadHours: float64(d.LeadSteps) * 24 / StepsPerDay}
}

// SelectChannels extracts the given channel indices of [C, H, W] into
// a new [len(chans), H, W] tensor.
func SelectChannels(f *tensor.Tensor, chans []int) *tensor.Tensor {
	h, w := f.Dim(1), f.Dim(2)
	out := tensor.New(len(chans), h, w)
	hw := h * w
	for i, c := range chans {
		copy(out.Data()[i*hw:(i+1)*hw], f.Data()[c*hw:(c+1)*hw])
	}
	return out
}

// NormalizedClimatology returns the source's time-mean climatology
// restricted to the given channels in normalized units, for wACC
// evaluation against normalized model outputs.
func (d *Dataset) NormalizedClimatology(chans []int) *tensor.Tensor {
	clim := d.World.Climatology()
	d.Stats.Normalize(clim)
	if chans != nil {
		clim = SelectChannels(clim, chans)
	}
	return clim
}

// NormalizedClimatologyAt returns the day-of-year climatology valid at
// sample i's target time, normalized and channel-selected. Scoring
// anomalies against it removes the trivially predictable seasonal
// march, the WeatherBench convention the paper follows.
func (d *Dataset) NormalizedClimatologyAt(i int, chans []int) *tensor.Tensor {
	clim := d.World.ClimatologyAt(d.StartStep + i + d.LeadSteps)
	d.Stats.Normalize(clim)
	if chans != nil {
		clim = SelectChannels(clim, chans)
	}
	return clim
}

// PretrainCorpus is the multi-source pre-training collection: one
// Dataset per CMIP6-like source, interleaved round-robin the way a
// distributed sampler would.
type PretrainCorpus struct {
	Sets []*Dataset
}

// NewPretrainCorpus builds datasets over the same variable registry
// and grid for each source. Stats are estimated once on the first
// source and shared, matching the common practice of a single
// normalization table.
func NewPretrainCorpus(vars []Variable, height, width int, sources []Source, stepsPerSource, leadSteps int) *PretrainCorpus {
	if len(sources) == 0 {
		panic("climate: no sources")
	}
	c := &PretrainCorpus{}
	var stats *Stats
	for _, src := range sources {
		w := NewWorld(vars, height, width, src)
		if stats == nil {
			stats = w.EstimateStats(16)
		}
		c.Sets = append(c.Sets, NewDataset(w, stats, 0, stepsPerSource, leadSteps))
	}
	return c
}

// Len returns the total sample count across sources.
func (c *PretrainCorpus) Len() int {
	n := 0
	for _, s := range c.Sets {
		n += s.Len()
	}
	return n
}

// At interleaves sources round-robin: sample i comes from source
// i mod S at index i / S.
func (c *PretrainCorpus) At(i int) Sample {
	s := len(c.Sets)
	return c.Sets[i%s].At((i / s) % c.Sets[i%s].Len())
}

// Stats returns the shared normalization statistics.
func (c *PretrainCorpus) Stats() *Stats { return c.Sets[0].Stats }

// Shard returns the sample indices assigned to DDP rank `rank` of
// `ranks` for one epoch with the given seed: a deterministic
// permutation split into contiguous per-rank chunks, mirroring a
// DistributedSampler.
func Shard(n, rank, ranks int, seed uint64) []int {
	perm := tensor.NewRNG(seed).Perm(n)
	per := n / ranks
	return perm[rank*per : (rank+1)*per]
}
