package core

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"orbit/internal/cluster"
	"orbit/internal/nn"
	"orbit/internal/optim"
	"orbit/internal/parallel"
	"orbit/internal/tensor"
)

const (
	testDim    = 8
	testHeads  = 2
	testTokens = 5
	testLayers = 2
)

func buildStack(seed uint64) []*nn.TransformerBlock {
	rng := tensor.NewRNG(seed)
	blocks := make([]*nn.TransformerBlock, testLayers)
	for i := range blocks {
		blocks[i] = nn.NewTransformerBlock(fmt.Sprintf("ref%d", i), testDim, testHeads, true, rng)
	}
	return blocks
}

func stackParams(blocks []*nn.TransformerBlock) []*nn.Param {
	var ps []*nn.Param
	for _, b := range blocks {
		ps = append(ps, b.Params()...)
	}
	return ps
}

func mseLoss(y, target *tensor.Tensor) (float64, *tensor.Tensor) {
	diff := tensor.Sub(y, target)
	loss := tensor.Dot(diff, diff) / float64(y.Len())
	return loss, tensor.Scale(diff, float32(2)/float32(y.Len()))
}

// serialStep runs the reference stack over the batch, averaging
// gradients, returning the mean loss.
func serialStep(blocks []*nn.TransformerBlock, xs, targets []*tensor.Tensor) float64 {
	nn.ZeroGrads(stackParams(blocks))
	var total float64
	for i, x := range xs {
		h := x
		for _, b := range blocks {
			h = b.Forward(h)
		}
		loss, grad := mseLoss(h, targets[i])
		total += loss
		grad.ScaleInPlace(float32(1) / float32(len(xs)))
		dy := grad
		for j := len(blocks) - 1; j >= 0; j-- {
			dy = blocks[j].Backward(dy)
		}
	}
	return total / float64(len(xs))
}

func runSPMD(ranks int, body func(rank int)) {
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			body(rank)
		}(r)
	}
	wg.Wait()
}

// buildEngines constructs one engine per rank from a common seed.
func buildEngines(t *testing.T, layout Layout, opts Options, seed uint64) ([]*Engine, *cluster.Machine) {
	t.Helper()
	m := cluster.NewMachine(cluster.Frontier(), (layout.Ranks()+7)/8, 0)
	groups, err := BuildGroups(layout, m)
	if err != nil {
		t.Fatal(err)
	}
	engines := make([]*Engine, layout.Ranks())
	for r := range engines {
		e, err := NewEngine(r, layout, groups[r], buildStack(seed), opts, m.Devices[r])
		if err != nil {
			t.Fatal(err)
		}
		engines[r] = e
	}
	return engines, m
}

// --- mapping ---

func TestLayoutRankCoordRoundTrip(t *testing.T) {
	l := Layout{TP: 2, FSDP: 3, DDP: 2}
	seen := map[int]bool{}
	for d := 0; d < l.DDP; d++ {
		for f := 0; f < l.FSDP; f++ {
			for tt := 0; tt < l.TP; tt++ {
				c := Coord{T: tt, F: f, D: d}
				r := l.RankOf(c)
				if seen[r] {
					t.Fatalf("duplicate rank %d", r)
				}
				seen[r] = true
				if got := l.CoordOf(r); got != c {
					t.Fatalf("CoordOf(RankOf(%+v)) = %+v", c, got)
				}
			}
		}
	}
	if len(seen) != l.Ranks() {
		t.Fatalf("%d ranks enumerated, want %d", len(seen), l.Ranks())
	}
}

func TestLayoutValidate(t *testing.T) {
	if (Layout{TP: 0, FSDP: 1, DDP: 1}).Validate() == nil {
		t.Error("zero TP accepted")
	}
	if (Layout{TP: 2, FSDP: 2, DDP: 2}).Validate() != nil {
		t.Error("valid layout rejected")
	}
}

func TestHierarchicalMappingTPWithinNode(t *testing.T) {
	// Paper Fig. 4: TP groups must land on single nodes for the fast
	// Infinity Fabric links; FSDP/DDP groups span nodes.
	l := Layout{TP: 8, FSDP: 2, DDP: 2}
	m := cluster.NewMachine(cluster.Frontier(), 4, 0)
	groups, err := BuildGroups(l, m)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < l.Ranks(); r++ {
		g := groups[r].TP
		devs := make([]*cluster.Device, g.Size())
		for i := range devs {
			devs[i] = g.Device(i)
		}
		if !cluster.SameNode(devs) {
			t.Fatalf("rank %d TP group spans nodes", r)
		}
	}
	// An FSDP group must span nodes in this layout (16 ranks/replica).
	g := groups[0].FSDP
	devs := make([]*cluster.Device, g.Size())
	for i := range devs {
		devs[i] = g.Device(i)
	}
	if cluster.SameNode(devs) {
		t.Error("FSDP group unexpectedly within one node")
	}
	if !TPWithinNode(l, 8) || TPWithinNode(Layout{TP: 16}, 8) || TPWithinNode(Layout{TP: 3}, 8) {
		t.Error("TPWithinNode misjudges layouts")
	}
}

func TestBuildGroupsRejectsTooFewDevices(t *testing.T) {
	m := cluster.NewMachine(cluster.Frontier(), 1, 0)
	if _, err := BuildGroups(Layout{TP: 8, FSDP: 2, DDP: 1}, m); err == nil {
		t.Error("expected error for 16 ranks on 8 devices")
	}
}

// --- numerical equivalence (paper Fig. 3 mechanism) ---

// hybridStep runs one forward/backward on every rank. Data: the
// sample for grid column (d,f) is xs[d*FSDP+f]; TP ranks share it.
func hybridStep(engines []*Engine, layout Layout, xs, targets []*tensor.Tensor) []float64 {
	losses := make([]float64, layout.Ranks())
	runSPMD(layout.Ranks(), func(rank int) {
		c := layout.CoordOf(rank)
		sample := c.D*layout.FSDP + c.F
		y, err := engines[rank].Forward(xs[sample])
		if err != nil {
			panic(err)
		}
		loss, grad := mseLoss(y, targets[sample])
		if _, err := engines[rank].Backward(grad); err != nil {
			panic(err)
		}
		losses[rank] = engines[rank].AverageLoss(loss)
	})
	return losses
}

func testBatch(seed uint64, n int) (xs, targets []*tensor.Tensor) {
	rng := tensor.NewRNG(seed)
	for i := 0; i < n; i++ {
		xs = append(xs, tensor.Randn(rng, 1, testTokens, testDim))
		targets = append(targets, tensor.Randn(rng, 1, testTokens, testDim))
	}
	return xs, targets
}

// verifyChunkGrads checks every rank's chunk gradient against the
// serial reference: chunk f of the flattened TP-shard gradient.
func verifyChunkGrads(t *testing.T, engines []*Engine, layout Layout, serial []*nn.TransformerBlock, tol float64) {
	t.Helper()
	for b := 0; b < testLayers; b++ {
		// Serial shard-by-shard flattened gradients per TP index.
		for tt := 0; tt < layout.TP; tt++ {
			shard := shardGradFlat(serial[b], tt, layout.TP, layout.FSDP)
			chunkLen := len(shard) / layout.FSDP
			for d := 0; d < layout.DDP; d++ {
				for f := 0; f < layout.FSDP; f++ {
					rank := layout.RankOf(Coord{T: tt, F: f, D: d})
					got := engines[rank].Chunks()[b].Grad.Data()
					if len(got) != chunkLen {
						t.Fatalf("chunk length %d vs serial %d", len(got), chunkLen)
					}
					for i := range got {
						want := shard[f*chunkLen+i]
						if math.Abs(float64(got[i]-want)) > tol*(1+math.Abs(float64(want))) {
							t.Fatalf("block %d rank %d (t=%d f=%d d=%d) grad[%d] = %v, want %v",
								b, rank, tt, f, d, i, got[i], want)
						}
					}
				}
			}
		}
	}
}

// shardGradFlat reproduces the engine's parameter layout for TP shard
// tt of a serial block and returns the flattened, padded gradient.
func shardGradFlat(ref *nn.TransformerBlock, tt, tp, fsdp int) []float32 {
	// Build a TP block view of the serial gradients by sharding each
	// gradient tensor exactly as NewTPBlock shards weights.
	var grads []*tensor.Tensor
	grads = append(grads, ref.LN1.Gamma.Grad, ref.LN1.Beta.Grad)
	for _, l := range []*nn.Linear{ref.Attn.WQ, ref.Attn.WK, ref.Attn.WV} {
		grads = append(grads, tensor.ColumnShard(l.Weight.Grad, tt, tp))
		grads = append(grads, biasShard(l.Bias.Grad, tt, tp))
	}
	grads = append(grads, tensor.RowShard(ref.Attn.WO.Weight.Grad, tt, tp))
	if tt == 0 {
		grads = append(grads, ref.Attn.WO.Bias.Grad)
	}
	grads = append(grads, ref.Attn.QNorm.Gamma.Grad, ref.Attn.QNorm.Beta.Grad)
	grads = append(grads, ref.Attn.KNorm.Gamma.Grad, ref.Attn.KNorm.Beta.Grad)
	grads = append(grads, ref.LN2.Gamma.Grad, ref.LN2.Beta.Grad)
	grads = append(grads, tensor.ColumnShard(ref.MLP.FC1.Weight.Grad, tt, tp))
	grads = append(grads, biasShard(ref.MLP.FC1.Bias.Grad, tt, tp))
	grads = append(grads, tensor.RowShard(ref.MLP.FC2.Weight.Grad, tt, tp))
	if tt == 0 {
		grads = append(grads, ref.MLP.FC2.Bias.Grad)
	}
	n := 0
	for _, g := range grads {
		n += g.Len()
	}
	padded := ((n + fsdp - 1) / fsdp) * fsdp
	flat := make([]float32, padded)
	off := 0
	for _, g := range grads {
		copy(flat[off:], g.Data())
		off += g.Len()
	}
	return flat
}

func biasShard(b *tensor.Tensor, k, kTotal int) *tensor.Tensor {
	part := b.Dim(0) / kTotal
	out := tensor.New(part)
	copy(out.Data(), b.Data()[k*part:(k+1)*part])
	return out
}

func TestHybridSTOPMatchesSerialTPxFSDP(t *testing.T) {
	layout := Layout{TP: 2, FSDP: 2, DDP: 1}
	for _, opts := range []Options{
		{LayerWrapping: true},
		{LayerWrapping: true, ActivationCheckpoint: true},
		{LayerWrapping: false},
	} {
		engines, _ := buildEngines(t, layout, opts, 77)
		xs, targets := testBatch(78, layout.FSDP*layout.DDP)

		serial := buildStack(77)
		serialLoss := serialStep(serial, xs, targets)

		losses := hybridStep(engines, layout, xs, targets)
		for r, l := range losses {
			if math.Abs(l-serialLoss) > 1e-5*(1+math.Abs(serialLoss)) {
				t.Errorf("opts %+v rank %d loss %v vs serial %v", opts, r, l, serialLoss)
			}
		}
		verifyChunkGrads(t, engines, layout, serial, 1e-3)
	}
}

func TestHybridSTOPMatchesSerialFullGrid(t *testing.T) {
	// Full three-level grid: TP 2 × FSDP 2 × DDP 2 = 8 ranks,
	// global batch of 4 samples.
	layout := Layout{TP: 2, FSDP: 2, DDP: 2}
	engines, _ := buildEngines(t, layout, DefaultOptions(), 91)
	xs, targets := testBatch(92, layout.FSDP*layout.DDP)

	serial := buildStack(91)
	serialLoss := serialStep(serial, xs, targets)

	losses := hybridStep(engines, layout, xs, targets)
	for r, l := range losses {
		if math.Abs(l-serialLoss) > 1e-5*(1+math.Abs(serialLoss)) {
			t.Errorf("rank %d loss %v vs serial %v", r, l, serialLoss)
		}
	}
	verifyChunkGrads(t, engines, layout, serial, 1e-3)
}

func TestHybridSTOPTrainingTrajectoryMatchesSerial(t *testing.T) {
	layout := Layout{TP: 2, FSDP: 2, DDP: 1}
	engines, _ := buildEngines(t, layout, Options{LayerWrapping: true}, 55)
	serial := buildStack(55)
	serialOpt := optim.NewAdamW(stackParams(serial), 0)
	opts := make([]*optim.AdamW, layout.Ranks())
	for r := range opts {
		opts[r] = optim.NewAdamW(engines[r].Chunks(), 0)
	}
	for step := 0; step < 3; step++ {
		xs, targets := testBatch(uint64(200+step), layout.FSDP)
		serialLoss := serialStep(serial, xs, targets)
		serialOpt.Step(1e-3)
		losses := hybridStep(engines, layout, xs, targets)
		runSPMD(layout.Ranks(), func(rank int) { opts[rank].Step(1e-3) })
		for r, l := range losses {
			if math.Abs(l-serialLoss) > 1e-4*(1+math.Abs(serialLoss)) {
				t.Fatalf("step %d rank %d loss %v vs serial %v", step, r, l, serialLoss)
			}
		}
	}
}

func TestDDPReplicasStayConsistent(t *testing.T) {
	// After backward + step, DDP copies of the same (t,f) chunk must
	// be bit-identical — the invariant that makes outer DDP sound.
	layout := Layout{TP: 1, FSDP: 2, DDP: 2}
	engines, _ := buildEngines(t, layout, DefaultOptions(), 66)
	xs, targets := testBatch(67, layout.FSDP*layout.DDP)
	hybridStep(engines, layout, xs, targets)
	for f := 0; f < layout.FSDP; f++ {
		r0 := layout.RankOf(Coord{T: 0, F: f, D: 0})
		r1 := layout.RankOf(Coord{T: 0, F: f, D: 1})
		for b := 0; b < testLayers; b++ {
			g0 := engines[r0].Chunks()[b].Grad
			g1 := engines[r1].Chunks()[b].Grad
			if !tensor.AllClose(g0, g1, 0, 0) {
				t.Fatalf("DDP copies diverge at f=%d block %d", f, b)
			}
		}
	}
}

// --- memory behaviour (paper Figs. 2, 3, 5 mechanisms) ---

func TestHybridSTOPPeakBelowVanillaFSDP(t *testing.T) {
	// The headline memory claim: Hybrid-STOP never gathers the full
	// model, so its peak is below vanilla FSDP's on the same stack and
	// rank count.
	ranks := 4
	mF := cluster.NewMachine(cluster.Frontier(), 1, ranks)
	gF, err := BuildGroups(Layout{TP: 1, FSDP: ranks, DDP: 1}, mF)
	if err != nil {
		t.Fatal(err)
	}
	_ = gF
	// Vanilla FSDP (no layer wrapping): use the parallel package.
	fsdpEngines := make([]*parallel.FSDP, ranks)
	for r := 0; r < ranks; r++ {
		blocks := buildStack(10)
		units := make([]nn.Layer, len(blocks))
		for i, b := range blocks {
			units[i] = b
		}
		e, err := parallel.NewFSDP(r, gF[0].FSDP, units, false, mF.Devices[r])
		if err != nil {
			t.Fatal(err)
		}
		fsdpEngines[r] = e
	}
	xs, targets := testBatch(11, ranks)
	runSPMD(ranks, func(rank int) {
		y, err := fsdpEngines[rank].Forward(xs[rank])
		if err != nil {
			t.Error(err)
			return
		}
		_, grad := mseLoss(y, targets[rank])
		fsdpEngines[rank].Backward(grad)
	})
	fsdpPeak := mF.MaxMemPeak()

	layout := Layout{TP: 2, FSDP: 2, DDP: 1}
	engines, mH := buildEngines(t, layout, DefaultOptions(), 10)
	hybridStep(engines, layout, xs[:2], targets[:2])
	hybridPeak := mH.MaxMemPeak()

	if hybridPeak >= fsdpPeak {
		t.Errorf("Hybrid-STOP peak %d should be below vanilla FSDP peak %d", hybridPeak, fsdpPeak)
	}
}

func TestActivationCheckpointLowersPeak(t *testing.T) {
	layout := Layout{TP: 1, FSDP: 2, DDP: 1}
	withCkpt, mC := buildEngines(t, layout, Options{LayerWrapping: true, ActivationCheckpoint: true}, 12)
	without, mN := buildEngines(t, layout, Options{LayerWrapping: true}, 12)
	xs, targets := testBatch(13, 2)
	hybridStep(withCkpt, layout, xs, targets)
	hybridStep(without, layout, xs, targets)
	if mC.MaxMemPeak() >= mN.MaxMemPeak() {
		t.Errorf("checkpointing peak %d should be below %d", mC.MaxMemPeak(), mN.MaxMemPeak())
	}
}

func TestMixedPrecisionHalvesGatherBytes(t *testing.T) {
	layout := Layout{TP: 1, FSDP: 2, DDP: 1}
	bf, _ := buildEngines(t, layout, Options{LayerWrapping: true, MixedPrecision: true}, 14)
	fp, _ := buildEngines(t, layout, Options{LayerWrapping: true}, 14)
	if bf[0].gatherBytes[0]*2 != fp[0].gatherBytes[0] {
		t.Errorf("bf16 gather bytes %d, fp32 %d", bf[0].gatherBytes[0], fp[0].gatherBytes[0])
	}
}

func TestMoreFSDPShardsLowerPersistentMemory(t *testing.T) {
	// Scaling mechanism behind Fig. 5: the owned chunk shrinks as the
	// FSDP group grows, so bigger machines fit bigger models.
	layout2 := Layout{TP: 1, FSDP: 2, DDP: 1}
	layout4 := Layout{TP: 1, FSDP: 4, DDP: 1}
	e2, _ := buildEngines(t, layout2, DefaultOptions(), 15)
	e4, _ := buildEngines(t, layout4, DefaultOptions(), 15)
	if e4[0].Chunks()[0].W.Len() >= e2[0].Chunks()[0].W.Len() {
		t.Errorf("chunk with FSDP=4 (%d) should be smaller than FSDP=2 (%d)",
			e4[0].Chunks()[0].W.Len(), e2[0].Chunks()[0].W.Len())
	}
}
