// Package core implements Hybrid Sharded Tensor-Data Orthogonal
// Parallelism (Hybrid-STOP), the primary contribution of the ORBIT
// paper (Sec. III). Hybrid-STOP distributes the two-matmul chains of
// the transformer (self-attention and feed-forward, both of the form
// y = xAB) in alternating column shards of A and row shards of B
// across a tensor-parallel group — exploiting the identity
// xAB = Σ_k x·A_{*,k}·B_{k,*} (Eqn. 2) — while every shard is
// additionally flat-sharded across an FSDP group and gathered
// per-layer on demand, so no rank ever materializes the full model
// (unlike vanilla FSDP, Fig. 2). An outer DDP level provides the
// remaining scale-out. The three groups are orthogonal axes of a rank
// grid mapped onto the machine hierarchy (Fig. 4): TP inside a node's
// fast Infinity Fabric, FSDP across nodes, DDP across sub-clusters.
package core

import (
	"fmt"

	"orbit/internal/cluster"
	"orbit/internal/comm"
)

// Layout describes the three orthogonal parallelism group sizes.
type Layout struct {
	TP, FSDP, DDP int
}

// Ranks returns the total rank count TP×FSDP×DDP.
func (l Layout) Ranks() int { return l.TP * l.FSDP * l.DDP }

// Validate reports impossible layouts.
func (l Layout) Validate() error {
	if l.TP < 1 || l.FSDP < 1 || l.DDP < 1 {
		return fmt.Errorf("core: group sizes must be positive, got %+v", l)
	}
	return nil
}

// Coord locates a rank on the 3-D grid.
type Coord struct {
	T, F, D int
}

// RankOf converts grid coordinates to a global rank. The TP index is
// fastest-varying so a TP group occupies consecutive devices (and
// therefore a single node when TP ≤ GPUs/node) — the paper's
// hierarchical mapping.
func (l Layout) RankOf(c Coord) int {
	return (c.D*l.FSDP+c.F)*l.TP + c.T
}

// CoordOf inverts RankOf.
func (l Layout) CoordOf(rank int) Coord {
	return Coord{
		T: rank % l.TP,
		F: (rank / l.TP) % l.FSDP,
		D: rank / (l.TP * l.FSDP),
	}
}

// Groups holds one rank's three communicators.
type Groups struct {
	TP   *comm.Group // same (D,F), varying T: activation reductions
	FSDP *comm.Group // same (D,T), varying F: parameter gather/scatter
	DDP  *comm.Group // same (F,T), varying D: gradient all-reduce
	// All spans every rank (loss averaging / diagnostics).
	All *comm.Group
}

// BuildGroups constructs the communicator grid over the machine's
// first Ranks() devices. Groups are shared objects: BuildGroups
// returns a per-rank view backed by common communicators, exactly one
// per grid line.
func BuildGroups(l Layout, m *cluster.Machine) ([]*Groups, error) {
	return BuildGroupsOver(l, m.Devices)
}

// BuildGroupsOver is BuildGroups over an explicit device window: the
// grid occupies window[0:Ranks()] in rank order. Pipeline layouts use
// it to stand up one inner TP×FSDP×DDP grid per stage, each over its
// stage's contiguous slice of the machine.
func BuildGroupsOver(l Layout, window []*cluster.Device) ([]*Groups, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	n := l.Ranks()
	if len(window) < n {
		return nil, fmt.Errorf("core: layout needs %d devices, window has %d", n, len(window))
	}
	devs := window[:n]

	tpGroups := make(map[[2]int]*comm.Group)
	fsdpGroups := make(map[[2]int]*comm.Group)
	ddpGroups := make(map[[2]int]*comm.Group)
	all := comm.NewGroup(devs)

	group := func(members []int) *comm.Group {
		ds := make([]*cluster.Device, len(members))
		for i, r := range members {
			ds[i] = devs[r]
		}
		return comm.NewGroup(ds)
	}

	for d := 0; d < l.DDP; d++ {
		for f := 0; f < l.FSDP; f++ {
			members := make([]int, l.TP)
			for t := 0; t < l.TP; t++ {
				members[t] = l.RankOf(Coord{T: t, F: f, D: d})
			}
			tpGroups[[2]int{d, f}] = group(members)
		}
	}
	for d := 0; d < l.DDP; d++ {
		for t := 0; t < l.TP; t++ {
			members := make([]int, l.FSDP)
			for f := 0; f < l.FSDP; f++ {
				members[f] = l.RankOf(Coord{T: t, F: f, D: d})
			}
			fsdpGroups[[2]int{d, t}] = group(members)
		}
	}
	for f := 0; f < l.FSDP; f++ {
		for t := 0; t < l.TP; t++ {
			members := make([]int, l.DDP)
			for d := 0; d < l.DDP; d++ {
				members[d] = l.RankOf(Coord{T: t, F: f, D: d})
			}
			ddpGroups[[2]int{f, t}] = group(members)
		}
	}

	views := make([]*Groups, n)
	for r := 0; r < n; r++ {
		c := l.CoordOf(r)
		views[r] = &Groups{
			TP:   tpGroups[[2]int{c.D, c.F}],
			FSDP: fsdpGroups[[2]int{c.D, c.T}],
			DDP:  ddpGroups[[2]int{c.F, c.T}],
			All:  all,
		}
	}
	return views, nil
}

// TPWithinNode reports whether every TP group fits inside one node
// under the contiguous mapping — the condition the paper's
// hierarchical placement guarantees by construction when
// TP ≤ GPUs/node and divides it evenly.
func TPWithinNode(l Layout, gpusPerNode int) bool {
	return l.TP <= gpusPerNode && gpusPerNode%l.TP == 0
}
