package core

import (
	"testing"

	"orbit/internal/cluster"
	"orbit/internal/nn"
	"orbit/internal/tensor"
)

// TestHybridSTOPStepSteadyStateAllocs pins the tentpole property of
// the asynchronous pooled collectives: after warmup, a full
// Hybrid-STOP training step (forward + backward on every rank of a
// TP 2 × FSDP 2 grid) performs (near) zero heap allocations — the
// gather/flatten staging, the pending-collective records, and the TP
// residual scratch must all recycle. Rank goroutines persist across
// steps so the measurement sees only the engine's own behaviour.
func TestHybridSTOPStepSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; zero-alloc assertion only valid in normal builds")
	}
	layout := Layout{TP: 2, FSDP: 2, DDP: 1}
	m := cluster.NewMachine(cluster.Frontier(), 1, 0)
	groups, err := BuildGroups(layout, m)
	if err != nil {
		t.Fatal(err)
	}
	engines := make([]*Engine, layout.Ranks())
	for r := range engines {
		rng := tensor.NewRNG(9)
		ref := []*nn.TransformerBlock{
			nn.NewTransformerBlock("b0", 32, 4, true, rng),
			nn.NewTransformerBlock("b1", 32, 4, true, rng),
		}
		e, err := NewEngine(r, layout, groups[r], ref, DefaultOptions(), m.Devices[r])
		if err != nil {
			t.Fatal(err)
		}
		engines[r] = e
	}
	rng := tensor.NewRNG(10)
	xs := []*tensor.Tensor{tensor.Randn(rng, 1, 16, 32), tensor.Randn(rng, 1, 16, 32)}
	gs := []*tensor.Tensor{tensor.Randn(rng, 1, 16, 32), tensor.Randn(rng, 1, 16, 32)}

	type job struct{ start, done chan struct{} }
	jobs := make([]job, layout.Ranks())
	for r := range jobs {
		jobs[r] = job{start: make(chan struct{}), done: make(chan struct{})}
		go func(rank int) {
			c := layout.CoordOf(rank)
			for range jobs[rank].start {
				if _, err := engines[rank].Forward(xs[c.F]); err != nil {
					panic(err)
				}
				if _, err := engines[rank].Backward(gs[c.F]); err != nil {
					panic(err)
				}
				jobs[rank].done <- struct{}{}
			}
		}(r)
	}
	step := func() {
		for r := range jobs {
			jobs[r].start <- struct{}{}
		}
		for r := range jobs {
			<-jobs[r].done
		}
	}
	for i := 0; i < 3; i++ {
		step() // warm module scratch, buffer pools, pending free lists
	}
	allocs := testing.AllocsPerRun(10, step)
	// Acceptance bound from the PR issue: ≤ 10 allocations per whole
	// 4-rank step, down from 367 before the async pooled collectives.
	if allocs > 10 {
		t.Errorf("steady-state Hybrid-STOP step allocates %.1f objects, want <= 10 (ideally 0)", allocs)
	}
	for r := range jobs {
		close(jobs[r].start)
	}
}
