package core

import (
	"fmt"

	"orbit/internal/cluster"
	"orbit/internal/nn"
	"orbit/internal/parallel"
	"orbit/internal/tensor"
)

// Options enables the training optimizations of paper Sec. III-B /
// Table I. LayerWrapping and ActivationCheckpoint change the
// functional engine's memory behaviour; Prefetch and MixedPrecision
// primarily affect the analytical performance model (the functional
// engine stays numerically fp32 so equivalence tests remain exact,
// and prefetching changes when communication happens, not what it
// computes).
type Options struct {
	// LayerWrapping gathers FSDP shards one transformer layer at a
	// time instead of the whole model (Sec. III-B "Layer Wrapping").
	LayerWrapping bool
	// Prefetch overlaps the next layer's shard gather with the current
	// layer's compute (Sec. III-B "Prefetching").
	Prefetch bool
	// ActivationCheckpoint discards per-block activations in forward
	// and recomputes them during backward (Sec. III-B).
	ActivationCheckpoint bool
	// MixedPrecision stores gathered parameters and exchanged
	// activations in bf16 (Sec. III-B "Mixed-Precision"); halves
	// communication and gather-buffer bytes.
	MixedPrecision bool
}

// DefaultOptions enables everything, as the paper's production
// configuration does (last column of Table I).
func DefaultOptions() Options {
	return Options{LayerWrapping: true, Prefetch: true, ActivationCheckpoint: true, MixedPrecision: true}
}

// Engine is one rank's Hybrid-STOP instance over a transformer block
// stack. The rank owns: (a) the TP shard of every block determined by
// its T coordinate, (b) only the 1/FSDP flat chunk of that shard, and
// (c) staging replicas that full shards are gathered into per layer.
type Engine struct {
	Rank   int
	Coord  Coord
	Layout Layout
	Groups *Groups
	Opts   Options
	Device *cluster.Device

	blocks      []*parallel.TPBlock
	blockParams [][]*nn.Param
	chunks      []*nn.Param // rank-owned FSDP chunk per block
	gatherBytes []int64
	actBytes    []int64
	savedInputs []*tensor.Tensor
	heldAct     int64
}

// paramBytes is the functional engine's per-element staging cost:
// bf16 gathers move and hold half the bytes of fp32.
func (e *Engine) paramBytes() int64 {
	if e.Opts.MixedPrecision {
		return 2
	}
	return 4
}

// NewEngine shards the reference blocks for this rank. Every rank
// must construct from an identical reference stack (same seed); the
// reference is only read, never retained.
func NewEngine(rank int, layout Layout, groups *Groups, ref []*nn.TransformerBlock, opts Options, dev *cluster.Device) (*Engine, error) {
	if err := layout.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		Rank:   rank,
		Coord:  layout.CoordOf(rank),
		Layout: layout,
		Groups: groups,
		Opts:   opts,
		Device: dev,
	}
	for i, rb := range ref {
		b := parallel.NewTPBlock(e.Coord.T, groups.TP, rb)
		e.blocks = append(e.blocks, b)
		params := b.Params()
		e.blockParams = append(e.blockParams, params)

		flat := parallel.FlattenParams(params, groups.FSDP.Size())
		chunkLen := len(flat) / groups.FSDP.Size()
		chunk := make([]float32, chunkLen)
		copy(chunk, flat[e.Coord.F*chunkLen:(e.Coord.F+1)*chunkLen])
		e.chunks = append(e.chunks, nn.NewParam(fmt.Sprintf("hstop.block%d.chunk", i), tensor.FromSlice(chunk, chunkLen)))
		e.gatherBytes = append(e.gatherBytes, int64(len(flat))*e.paramBytes())

		// Rough per-block activation footprint: token embeddings at
		// each of ~8 interior stages plus local attention maps.
		t := int64(0)
		if dev != nil {
			dim := int64(rb.LN1.Dim)
			t = 8*4*dim*dimTokensHint + 4*int64(b.Attn.LocalHeads)*dimTokensHint*dimTokensHint
		}
		e.actBytes = append(e.actBytes, t)

		if dev != nil {
			// Persistent: owned chunk weights + grads (fp32 master).
			if err := dev.Alloc(int64(chunkLen) * 8); err != nil {
				return nil, err
			}
		}
	}
	e.savedInputs = make([]*tensor.Tensor, len(ref))
	return e, nil
}

// dimTokensHint sizes the activation estimate; engines process
// sequences of a few hundred tokens at most in functional mode.
const dimTokensHint = 64

// Chunks exposes the rank-owned parameter chunks for the optimizer.
func (e *Engine) Chunks() []*nn.Param { return e.chunks }

// gatherBlock materializes block b's full TP-shard parameters from
// the FSDP group. Unlike vanilla FSDP this gathers a 1/TP shard, not
// the full model — the core memory advantage of Hybrid-STOP.
func (e *Engine) gatherBlock(b int) error {
	if e.Device != nil {
		if err := e.Device.Alloc(e.gatherBytes[b]); err != nil {
			return err
		}
	}
	full := e.Groups.FSDP.AllGather(e.Coord.F, e.chunks[b].W.Data())
	parallel.UnflattenInto(full, e.blockParams[b])
	return nil
}

// releaseBlock frees block b's gathered staging copy.
func (e *Engine) releaseBlock(b int) {
	if e.Device != nil {
		e.Device.Free(e.gatherBytes[b])
	}
}

// Forward runs the rank's local sample through the sharded stack.
// Ranks in the same TP group must pass identical x (they share the
// data batch); ranks differing in F or D pass their own samples.
func (e *Engine) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	if !e.Opts.LayerWrapping {
		for b := range e.blocks {
			if err := e.gatherBlock(b); err != nil {
				return nil, err
			}
		}
	}
	for b, blk := range e.blocks {
		if e.Opts.LayerWrapping {
			if err := e.gatherBlock(b); err != nil {
				return nil, err
			}
		}
		if e.Opts.ActivationCheckpoint {
			// Keep only the block input; interior activations are
			// recomputed in backward.
			e.savedInputs[b] = x
		} else {
			e.savedInputs[b] = x
			if e.Device != nil {
				if err := e.Device.Alloc(e.actBytes[b]); err != nil {
					return nil, err
				}
				e.heldAct += e.actBytes[b]
			}
		}
		x = blk.Forward(x)
		if e.Opts.LayerWrapping {
			e.releaseBlock(b)
		}
	}
	return x, nil
}

// Backward propagates dy through the stack in reverse: per block it
// re-gathers the shard (paper Fig. 3b), optionally recomputes the
// forward (activation checkpointing), computes shard gradients,
// averages them over the FSDP group with reduce-scatter, and finally
// averages the chunk gradients across the DDP group. Gradients land
// in Chunks()[b].Grad.
func (e *Engine) Backward(dy *tensor.Tensor) (*tensor.Tensor, error) {
	for b := len(e.blocks) - 1; b >= 0; b-- {
		if e.Opts.LayerWrapping {
			if err := e.gatherBlock(b); err != nil {
				return nil, err
			}
		}
		if e.Opts.ActivationCheckpoint {
			// Recompute the forward segment to rebuild layer caches
			// (trading compute for memory, Sec. III-B).
			e.blocks[b].Forward(e.savedInputs[b])
		} else if e.Device != nil {
			e.Device.Free(e.actBytes[b])
			e.heldAct -= e.actBytes[b]
		}
		nn.ZeroGrads(e.blockParams[b])
		dy = e.blocks[b].Backward(dy)
		flat := parallel.FlattenGrads(e.blockParams[b], e.Groups.FSDP.Size())
		chunk := e.Groups.FSDP.ReduceScatterMean(e.Coord.F, flat)
		copy(e.chunks[b].Grad.Data(), chunk)
		e.releaseBlock(b)
	}
	// Outer DDP level: one gradient reduction per step (Fig. 4).
	if e.Groups.DDP.Size() > 1 {
		for _, c := range e.chunks {
			avg := e.Groups.DDP.AllReduceMean(e.Coord.D, c.Grad.Data())
			copy(c.Grad.Data(), avg)
		}
	}
	return dy, nil
}

// AverageLoss averages a local loss over all ranks. Every sample is
// counted TP times (TP ranks share a sample), uniformly, so the
// all-rank mean equals the per-sample mean.
func (e *Engine) AverageLoss(local float64) float64 {
	return e.Groups.All.AllReduceScalar(e.Rank, local) / float64(e.Groups.All.Size())
}
