package core

import (
	"fmt"

	"orbit/internal/cluster"
	"orbit/internal/comm"
	"orbit/internal/nn"
	"orbit/internal/parallel"
	"orbit/internal/tensor"
)

// Options enables the training optimizations of paper Sec. III-B /
// Table I. LayerWrapping and ActivationCheckpoint change the
// functional engine's memory behaviour; Prefetch and MixedPrecision
// primarily affect the analytical performance model (the functional
// engine stays numerically fp32 so equivalence tests remain exact,
// and prefetching changes when communication happens, not what it
// computes).
type Options struct {
	// LayerWrapping gathers FSDP shards one transformer layer at a
	// time instead of the whole model (Sec. III-B "Layer Wrapping").
	LayerWrapping bool
	// Prefetch overlaps the next layer's shard gather with the current
	// layer's compute (Sec. III-B "Prefetching").
	Prefetch bool
	// ActivationCheckpoint discards per-block activations in forward
	// and recomputes them during backward (Sec. III-B).
	ActivationCheckpoint bool
	// MixedPrecision stores gathered parameters and exchanged
	// activations in bf16 (Sec. III-B "Mixed-Precision"); halves
	// communication and gather-buffer bytes.
	MixedPrecision bool
	// PrefetchDepth is how many upcoming layer gathers are kept in
	// flight when Prefetch is enabled (≤ 0 means the classic depth of
	// one). Deeper prefetch trades gather-staging memory — depth+1
	// layer buffers live at once — for earlier posting, which matters
	// in backward where re-gathers contend with gradient
	// reduce-scatters on the FSDP group's single communication stream.
	PrefetchDepth int
	// DDPBucketBytes, when positive, coalesces the per-block DDP
	// gradient all-reduces into flat buckets of at most this many
	// bytes (each bucket holds at least one block chunk). Zero keeps
	// one collective per block chunk. Bucketing is bit-identical to
	// the per-chunk reduction — both accumulate elementwise in
	// float64 — and only changes how many latency-bound ring setups
	// the outer DDP level pays per step.
	DDPBucketBytes int
}

// DefaultOptions enables everything, as the paper's production
// configuration does (last column of Table I).
func DefaultOptions() Options {
	return Options{LayerWrapping: true, Prefetch: true, ActivationCheckpoint: true, MixedPrecision: true}
}

// Engine is one rank's Hybrid-STOP instance over a transformer block
// stack. The rank owns: (a) the TP shard of every block determined by
// its T coordinate, (b) only the 1/FSDP flat chunk of that shard, and
// (c) staging replicas that full shards are gathered into per layer.
type Engine struct {
	Rank   int
	Coord  Coord
	Layout Layout
	Groups *Groups
	Opts   Options
	Device *cluster.Device

	blocks      []*parallel.TPBlock
	blockParams [][]*nn.Param
	chunks      []*nn.Param // rank-owned FSDP chunk per block
	gatherBytes []int64
	flatLen     []int
	logicalLen  []int // unpadded flat length per block (checkpoint manifests)
	actBytes    []int64
	savedInputs []*tensor.Tensor
	heldAct     int64

	// Communication staging: pooled gather/flatten buffers and the
	// in-flight handles of the asynchronous collectives, so parameter
	// gathers prefetch ahead of compute and gradient reductions drain
	// behind it (paper Sec. III-B "Prefetching").
	pool      *comm.BufPool
	gatherBuf [][]float32
	gatherH   []comm.Handle
	rsBuf     [][]float32
	rsH       []comm.Handle
	ddpH      []comm.Handle
	// ddpBuckets holds [start, end) chunk-index ranges when
	// Opts.DDPBucketBytes coalesces the outer gradient reduction;
	// ddpBuf stages each bucket's packed gradients (pooled).
	ddpBuckets [][2]int
	ddpBuf     [][]float32
	// chunkSeen[b] is chunks[b].W.Version()+1 as of the last unflatten
	// of block b (0 = never): when the rank's chunk hasn't changed, the
	// gathered payload is bit-identical to what the staging replicas
	// already hold — SPMD ranks step their optimizers together, so one
	// rank's chunk version tracks the whole group's — and the unflatten
	// copy is skipped. The collective itself still runs and is charged.
	chunkSeen []uint64
	// recomputed marks that the caller just re-ran Forward to restore
	// the module caches (pipeline schedules stream several micro-batches
	// through one engine, clobbering them); the next Backward then
	// charges two forward-equivalents instead of three, because the
	// recompute already paid its own compute and communication. Cleared
	// when that Backward returns. See NoteRecomputed.
	recomputed bool
}

// paramBytes is the functional engine's per-element staging cost:
// bf16 gathers move and hold half the bytes of fp32.
func (e *Engine) paramBytes() int64 {
	if e.Opts.MixedPrecision {
		return 2
	}
	return 4
}

// NewEngine shards the reference blocks for this rank. Every rank
// must construct from an identical reference stack (same seed); the
// reference is only read, never retained.
func NewEngine(rank int, layout Layout, groups *Groups, ref []*nn.TransformerBlock, opts Options, dev *cluster.Device) (*Engine, error) {
	if err := layout.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		Rank:   rank,
		Coord:  layout.CoordOf(rank),
		Layout: layout,
		Groups: groups,
		Opts:   opts,
		Device: dev,
	}
	for i, rb := range ref {
		b := parallel.NewTPBlock(e.Coord.T, groups.TP, rb)
		e.blocks = append(e.blocks, b)
		params := b.Params()
		e.blockParams = append(e.blockParams, params)

		flat := parallel.FlattenParams(params, groups.FSDP.Size())
		chunkLen := len(flat) / groups.FSDP.Size()
		chunk := make([]float32, chunkLen)
		copy(chunk, flat[e.Coord.F*chunkLen:(e.Coord.F+1)*chunkLen])
		e.chunks = append(e.chunks, nn.NewParam(fmt.Sprintf("hstop.block%d.chunk", i), tensor.FromSlice(chunk, chunkLen)))
		e.gatherBytes = append(e.gatherBytes, int64(len(flat))*e.paramBytes())
		e.flatLen = append(e.flatLen, len(flat))
		e.logicalLen = append(e.logicalLen, parallel.NumelPadded(params, 1))

		// Rough per-block activation footprint: token embeddings at
		// each of ~8 interior stages plus local attention maps.
		t := int64(0)
		if dev != nil {
			dim := int64(rb.LN1.Dim)
			t = 8*4*dim*dimTokensHint + 4*int64(b.Attn.LocalHeads)*dimTokensHint*dimTokensHint
		}
		e.actBytes = append(e.actBytes, t)

		if dev != nil {
			// Persistent: owned chunk weights + grads (fp32 master).
			if err := dev.Alloc(int64(chunkLen) * 8); err != nil {
				return nil, err
			}
		}
	}
	e.savedInputs = make([]*tensor.Tensor, len(ref))
	e.pool = comm.NewBufPool()
	e.gatherBuf = make([][]float32, len(ref))
	e.gatherH = make([]comm.Handle, len(ref))
	e.rsBuf = make([][]float32, len(ref))
	e.rsH = make([]comm.Handle, len(ref))
	e.ddpH = make([]comm.Handle, len(ref))
	e.chunkSeen = make([]uint64, len(ref))
	if e.Opts.DDPBucketBytes > 0 {
		e.ddpBuckets = BucketRanges(chunkLens(e.chunks), e.Opts.DDPBucketBytes)
		e.ddpBuf = make([][]float32, len(e.ddpBuckets))
	}
	return e, nil
}

// chunkLens returns the per-block owned-chunk lengths.
func chunkLens(chunks []*nn.Param) []int {
	lens := make([]int, len(chunks))
	for i, c := range chunks {
		lens[i] = c.W.Len()
	}
	return lens
}

// BucketRanges greedily coalesces consecutive chunks into buckets of
// at most bucketBytes (4 bytes per element; every bucket holds at
// least one chunk). Exported so the parallelism planner predicts the
// exact bucket count the engine will use.
func BucketRanges(lens []int, bucketBytes int) [][2]int {
	capFloats := bucketBytes / 4
	var out [][2]int
	start, cur := 0, 0
	for i, n := range lens {
		if i > start && cur+n > capFloats {
			out = append(out, [2]int{start, i})
			start, cur = i, 0
		}
		cur += n
	}
	out = append(out, [2]int{start, len(lens)})
	return out
}

// prefetchDepth returns how many gathers ahead of the current layer
// the engine keeps in flight (0 when prefetching is off).
func (e *Engine) prefetchDepth() int {
	if !e.Opts.Prefetch {
		return 0
	}
	if e.Opts.PrefetchDepth > 1 {
		return e.Opts.PrefetchDepth
	}
	return 1
}

// BlockFLOPs counts the floating-point operations one rank executes
// for a forward pass of its TP shard of one transformer block over
// [tokens, dim] activations: the QKV/output projections contribute
// 8·T·D², the 4·D-hidden MLP 16·T·D², and the attention scores and
// values 4·T²·D — all divided across the TP group, which is exactly
// the work division of the paper's Eqn. (2). The engine charges this
// to the simulated device clock so layouts trade compute against
// communication the way the real machine does; the parallelism
// planner (internal/plan) charges the identical quantity, which is
// what keeps its step-time predictions calibrated against the
// functional simulation.
func BlockFLOPs(tokens, dim, tp int) int64 {
	t, d := float64(tokens), float64(dim)
	return int64((24*t*d*d + 4*t*t*d) / float64(tp))
}

// dimTokensHint sizes the activation estimate; engines process
// sequences of a few hundred tokens at most in functional mode.
const dimTokensHint = 64

// Chunks exposes the rank-owned parameter chunks for the optimizer.
func (e *Engine) Chunks() []*nn.Param { return e.chunks }

// LogicalFlatLens returns the unpadded flattened parameter length of
// each block's TP shard — what a sharded checkpoint manifest records
// so chunks reshard exactly across a different FSDP extent.
func (e *Engine) LogicalFlatLens() []int {
	return append([]int(nil), e.logicalLen...)
}

// ExportChunks snapshots the rank-owned parameter chunks (one per
// block) for a sharded checkpoint. Like training itself, no rank ever
// exports more than its 1/(TP·FSDP) slice of the model.
func (e *Engine) ExportChunks() [][]float32 {
	out := make([][]float32, len(e.chunks))
	for b, c := range e.chunks {
		chunk := make([]float32, c.W.Len())
		copy(chunk, c.W.Data())
		out[b] = chunk
	}
	return out
}

// ImportChunks restores chunks written by ExportChunks (possibly
// resharded by the checkpoint layer), invalidating the staged replicas
// so the next gather materializes the restored weights.
func (e *Engine) ImportChunks(chunks [][]float32) {
	if len(chunks) != len(e.chunks) {
		panic(fmt.Sprintf("core: ImportChunks got %d chunks for %d blocks", len(chunks), len(e.chunks)))
	}
	for b, chunk := range chunks {
		c := e.chunks[b]
		if len(chunk) != c.W.Len() {
			panic(fmt.Sprintf("core: ImportChunks block %d chunk length %d, want %d", b, len(chunk), c.W.Len()))
		}
		copy(c.W.Data(), chunk)
		c.W.Bump()
		e.chunkSeen[b] = 0
	}
}

// postGather accounts block b's gather memory and posts the FSDP
// all-gather of its TP-shard parameters into a pooled staging buffer.
// Unlike vanilla FSDP this gathers a 1/TP shard, not the full model —
// the core memory advantage of Hybrid-STOP.
func (e *Engine) postGather(b int) error {
	if e.Device != nil {
		if err := e.Device.Alloc(e.gatherBytes[b]); err != nil {
			return err
		}
	}
	buf := e.pool.Get(e.flatLen[b])
	e.gatherBuf[b] = buf
	e.gatherH[b] = e.Groups.FSDP.IAllGather(e.Coord.F, e.chunks[b].W.Data(), buf)
	return nil
}

// waitGather completes block b's in-flight gather and materializes
// the full shard parameters into the staging replica. The unflatten
// copy is skipped while the rank's chunk version is unchanged (see
// chunkSeen) — the gathered bytes are identical to what the replica
// already holds.
func (e *Engine) waitGather(b int) {
	e.gatherH[b].Wait()
	if seen := e.chunks[b].W.Version() + 1; e.chunkSeen[b] != seen {
		parallel.UnflattenInto(e.gatherBuf[b], e.blockParams[b])
		e.chunkSeen[b] = seen
	}
}

// releaseBlock frees block b's gathered staging copy, returning the
// buffer to the pool.
func (e *Engine) releaseBlock(b int) {
	if e.Device != nil {
		e.Device.Free(e.gatherBytes[b])
	}
	e.pool.Put(e.gatherBuf[b])
	e.gatherBuf[b] = nil
}

// chargeCompute advances the rank's simulated device clock by `mult`
// forward passes of block b's TP shard over [tokens, dim]
// activations. Charging happens at the same program points the real
// kernels would run — after the layer's gather completed, before its
// collectives post — so asynchronously prefetched gathers genuinely
// hide behind compute in the clock model (the overlap the paper's
// Sec. III-B optimizations exploit). The functional math stays fp32
// regardless of MixedPrecision; the charge model mirrors that.
func (e *Engine) chargeCompute(b int, x *tensor.Tensor, mult int64) {
	if e.Device == nil {
		return
	}
	dim := e.blocks[b].LN1.Dim
	tokens := x.Len() / dim
	e.Device.Compute(mult * BlockFLOPs(tokens, dim, e.Groups.TP.Size()))
}

// Forward runs the rank's local sample through the sharded stack.
// Ranks in the same TP group must pass identical x (they share the
// data batch); ranks differing in F or D pass their own samples.
// With Prefetch, the next PrefetchDepth blocks' parameter gathers are
// posted before the current block computes, hiding the transfers
// behind compute.
func (e *Engine) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	if !e.Opts.LayerWrapping {
		for b := range e.blocks {
			if err := e.postGather(b); err != nil {
				return nil, err
			}
		}
		for b := range e.blocks {
			e.waitGather(b)
		}
	}
	depth := e.prefetchDepth()
	for b, blk := range e.blocks {
		if e.Opts.LayerWrapping {
			if e.gatherBuf[b] == nil {
				if err := e.postGather(b); err != nil {
					return nil, err
				}
			}
			for k := 1; k <= depth && b+k < len(e.blocks); k++ {
				if e.gatherBuf[b+k] != nil {
					continue
				}
				if err := e.postGather(b + k); err != nil {
					return nil, err
				}
			}
			e.waitGather(b)
		}
		if e.Opts.ActivationCheckpoint {
			// Keep only the block input; interior activations are
			// recomputed in backward.
			e.savedInputs[b] = x
		} else {
			e.savedInputs[b] = x
			if e.Device != nil {
				if err := e.Device.Alloc(e.actBytes[b]); err != nil {
					return nil, err
				}
				e.heldAct += e.actBytes[b]
			}
		}
		e.chargeCompute(b, x, 1)
		x = blk.Forward(x)
		if e.Opts.LayerWrapping {
			e.releaseBlock(b)
		}
	}
	return x, nil
}

// Backward propagates dy through the stack in reverse: per block it
// re-gathers the shard (paper Fig. 3b, prefetching the next block's
// gather while the current one computes), optionally recomputes the
// forward (activation checkpointing), computes shard gradients, and
// posts their FSDP reduce-scatter asynchronously so the reduction
// overlaps earlier blocks' backward compute; all reductions are
// drained before the outer DDP-group averaging. Gradients land in
// Chunks()[b].Grad, complete when Backward returns.
func (e *Engine) Backward(dy *tensor.Tensor) (*tensor.Tensor, error) {
	depth := e.prefetchDepth()
	for b := len(e.blocks) - 1; b >= 0; b-- {
		if e.Opts.LayerWrapping {
			if e.gatherBuf[b] == nil {
				if err := e.postGather(b); err != nil {
					return nil, err
				}
			}
			for k := 1; k <= depth && b-k >= 0; k++ {
				if e.gatherBuf[b-k] != nil {
					continue
				}
				if err := e.postGather(b - k); err != nil {
					return nil, err
				}
			}
			// The re-gather's collective ran (and charged the simulated
			// clocks), but its payload is bit-identical to what Forward
			// already unflattened — chunks only change at optimizer
			// steps — so the unflatten copy is skipped.
			e.gatherH[b].Wait()
		}
		if !e.Opts.ActivationCheckpoint && e.Device != nil {
			e.Device.Free(e.actBytes[b])
			e.heldAct -= e.actBytes[b]
		}
		// With activation checkpointing the real system would recompute
		// the block forward here (trading compute for memory,
		// Sec. III-B); the functional engine's module caches are still
		// resident from Forward — each rank runs one sample per step,
		// so nothing has overwritten them — and the recompute would
		// reproduce bit-identical values. The memory model above still
		// reflects the discard, and the analytic model (internal/perf)
		// charges the recompute FLOPs; re-running it functionally would
		// only burn host time. (parallel.Pipeline must recompute: its
		// stages stream several micro-batches through the same blocks,
		// clobbering the caches.)
		// Two forward-equivalents of gradient math, plus the recompute
		// forward that activation checkpointing re-executes (the
		// functional engine reuses its resident caches — see above —
		// but the clock pays for the recompute the real system runs).
		// When the caller already re-ran Forward for real (pipeline
		// stages, NoteRecomputed), that recompute charged itself.
		mult := int64(2)
		if e.Opts.ActivationCheckpoint && !e.recomputed {
			mult = 3
		}
		e.chargeCompute(b, dy, mult)
		nn.ZeroGrads(e.blockParams[b])
		dy = e.blocks[b].Backward(dy)
		flat := parallel.FlattenGradsInto(e.pool.Get(e.flatLen[b]), e.blockParams[b])
		e.rsBuf[b] = flat
		e.rsH[b] = e.Groups.FSDP.IReduceScatterMean(e.Coord.F, flat, e.chunks[b].Grad.Data())
		e.releaseBlock(b)
	}
	for b := range e.blocks {
		if e.rsBuf[b] != nil {
			e.rsH[b].Wait()
			e.pool.Put(e.rsBuf[b])
			e.rsBuf[b] = nil
		}
	}
	// Outer DDP level: one gradient reduction per step (Fig. 4), all
	// chunks (or coalesced buckets of chunks, when DDPBucketBytes is
	// set) posted in flight together and drained in order.
	if e.Groups.DDP.Size() > 1 {
		if len(e.ddpBuckets) > 0 {
			e.ddpBucketedReduce()
		} else {
			for i, c := range e.chunks {
				e.ddpH[i] = e.Groups.DDP.IAllReduceMean(e.Coord.D, c.Grad.Data(), c.Grad.Data())
			}
			for i := range e.chunks {
				e.ddpH[i].Wait()
			}
		}
	}
	e.recomputed = false
	return dy, nil
}

// NoteRecomputed marks that the caller re-ran Forward immediately
// before the next Backward to restore clobbered module caches — the
// real recompute a pipeline stage performs when later micro-batches
// have streamed through the engine since this one's forward. The next
// Backward charges two forward-equivalents (the gradient math) instead
// of three; the recompute Forward already charged its own compute,
// gathers, and TP reductions.
func (e *Engine) NoteRecomputed() { e.recomputed = true }

// ddpBucketedReduce packs consecutive chunk gradients into pooled
// flat buckets, averages each bucket across the DDP group in place,
// and scatters the results back. Elementwise float64 accumulation
// makes the bucketed reduction bit-identical to the per-chunk one;
// only the number of latency-bound ring setups changes.
func (e *Engine) ddpBucketedReduce() {
	for i, r := range e.ddpBuckets {
		n := 0
		for b := r[0]; b < r[1]; b++ {
			n += e.chunks[b].Grad.Len()
		}
		buf := e.pool.Get(n)
		off := 0
		for b := r[0]; b < r[1]; b++ {
			g := e.chunks[b].Grad.Data()
			copy(buf[off:], g)
			off += len(g)
		}
		e.ddpBuf[i] = buf
		e.ddpH[i] = e.Groups.DDP.IAllReduceMean(e.Coord.D, buf, buf)
	}
	for i, r := range e.ddpBuckets {
		e.ddpH[i].Wait()
		buf := e.ddpBuf[i]
		off := 0
		for b := r[0]; b < r[1]; b++ {
			g := e.chunks[b].Grad.Data()
			copy(g, buf[off:off+len(g)])
			off += len(g)
		}
		e.pool.Put(buf)
		e.ddpBuf[i] = nil
	}
}

// AverageLoss averages a local loss over all ranks. Every sample is
// counted TP times (TP ranks share a sample), uniformly, so the
// all-rank mean equals the per-sample mean.
func (e *Engine) AverageLoss(local float64) float64 {
	return e.Groups.All.AllReduceScalar(e.Rank, local) / float64(e.Groups.All.Size())
}

// PoisonComm aborts every collective this rank's communicators may
// block on: peers of a failed rank wake with a comm.Poisoned panic
// instead of waiting forever on a post that will never come. Each
// unwinding peer poisons its own groups in turn, so the abort
// propagates transitively across the whole TP×FSDP×DDP grid. The
// engine (and the shared groups) are unusable afterwards — the
// elastic rebuild path constructs fresh ones.
func (e *Engine) PoisonComm() {
	e.Groups.TP.Poison()
	e.Groups.FSDP.Poison()
	e.Groups.DDP.Poison()
	e.Groups.All.Poison()
}
