package core

import (
	"reflect"
	"testing"

	"orbit/internal/tensor"
)

// engineStepGrads runs one SPMD forward/backward over the grid and
// returns each rank's chunk gradients.
func engineStepGrads(t *testing.T, layout Layout, opts Options) [][][]float32 {
	t.Helper()
	engines, _ := buildEngines(t, layout, opts, 77)
	rng := tensor.NewRNG(78)
	dataRanks := layout.FSDP * layout.DDP
	xs := make([]*tensor.Tensor, dataRanks)
	gs := make([]*tensor.Tensor, dataRanks)
	for i := range xs {
		xs[i] = tensor.Randn(rng, 1, testTokens, testDim)
		gs[i] = tensor.Randn(rng, 1, testTokens, testDim)
	}
	runSPMD(layout.Ranks(), func(rank int) {
		c := layout.CoordOf(rank)
		d := c.D*layout.FSDP + c.F
		if _, err := engines[rank].Forward(xs[d]); err != nil {
			panic(err)
		}
		if _, err := engines[rank].Backward(gs[d]); err != nil {
			panic(err)
		}
	})
	out := make([][][]float32, len(engines))
	for r, e := range engines {
		for _, c := range e.Chunks() {
			out[r] = append(out[r], append([]float32(nil), c.Grad.Data()...))
		}
	}
	return out
}

// TestDDPBucketingBitIdentical pins the DDPBucketBytes knob: packing
// the outer gradient all-reduces into flat buckets must produce
// exactly the per-chunk reduction's bits (both accumulate elementwise
// in float64), for bucket sizes that force one, several, and a single
// coalesced collective.
func TestDDPBucketingBitIdentical(t *testing.T) {
	layout := Layout{TP: 1, FSDP: 2, DDP: 2}
	base := engineStepGrads(t, layout, DefaultOptions())
	for _, bytes := range []int{64, 1 << 10, 1 << 30} {
		opts := DefaultOptions()
		opts.DDPBucketBytes = bytes
		got := engineStepGrads(t, layout, opts)
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("bucketed DDP (bucket %d bytes) gradients differ from per-chunk reduction", bytes)
		}
	}
}

// TestPrefetchDepthBitIdentical pins the PrefetchDepth knob: deeper
// gather prefetch changes only when collectives are posted, never
// what they carry.
func TestPrefetchDepthBitIdentical(t *testing.T) {
	layout := Layout{TP: 2, FSDP: 2, DDP: 1}
	base := engineStepGrads(t, layout, DefaultOptions())
	for _, depth := range []int{0, 2, 3} {
		opts := DefaultOptions()
		opts.Prefetch = depth > 0
		opts.PrefetchDepth = depth
		got := engineStepGrads(t, layout, opts)
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("prefetch depth %d gradients differ from depth-1 baseline", depth)
		}
	}
}

// TestBucketRanges pins the coalescing geometry the planner predicts.
func TestBucketRanges(t *testing.T) {
	got := BucketRanges([]int{10, 10, 10, 10}, 80) // 20 floats per bucket
	want := [][2]int{{0, 2}, {2, 4}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("BucketRanges = %v, want %v", got, want)
	}
	// A chunk larger than the cap still gets its own bucket.
	got = BucketRanges([]int{100, 5, 5}, 40)
	want = [][2]int{{0, 1}, {1, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("BucketRanges oversized = %v, want %v", got, want)
	}
	got = BucketRanges([]int{3}, 4)
	want = [][2]int{{0, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("BucketRanges single = %v, want %v", got, want)
	}
}

// TestComputeChargedToClocks: the functional engine charges block
// FLOPs to the simulated device clock, so a step costs compute time
// even on a single-group layout with near-zero communication.
func TestComputeChargedToClocks(t *testing.T) {
	layout := Layout{TP: 1, FSDP: 1, DDP: 1}
	engines, m := buildEngines(t, layout, DefaultOptions(), 9)
	x := tensor.Randn(tensor.NewRNG(10), 1, testTokens, testDim)
	if _, err := engines[0].Forward(x); err != nil {
		t.Fatal(err)
	}
	if _, err := engines[0].Backward(x); err != nil {
		t.Fatal(err)
	}
	// Forward charges 1× per block, backward 3× (2× gradient math +
	// 1× checkpoint recompute) under DefaultOptions.
	want := float64(4*testLayers*BlockFLOPs(testTokens, testDim, 1)) /
		(m.Spec.PeakFLOPS * m.Spec.Efficiency)
	got := m.Devices[0].Clock()
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("clock = %v, want %v (pure compute, no comm cost on 1-rank groups)", got, want)
	}
}
