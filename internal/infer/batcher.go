package infer

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrClosed is returned by Do after Close.
var ErrClosed = errors.New("infer: batcher closed")

// RequestError reports a rollout request rejected by validation —
// a start index outside the dataset window or a non-positive horizon.
// It is returned (not panicked) by Batcher.Do/DoContext, so library
// callers with bad indices fail at admission instead of deep inside
// the engine; match it with errors.As.
type RequestError struct {
	Start, Steps int
	Reason       string
}

func (e *RequestError) Error() string {
	return fmt.Sprintf("infer: bad request (start %d, steps %d): %s", e.Start, e.Steps, e.Reason)
}

// Request is one rollout to serve: the initial condition is the
// dataset sample at Start, advanced Steps lead steps with per-step
// scoring.
type Request struct {
	Start int
	Steps int
}

// Response is one served rollout.
type Response struct {
	Start, Steps int
	// Coalesced is how many requests shared this forward batch — the
	// observable effect of dynamic batching.
	Coalesced int
	Scores    []StepScore
}

// Batcher coalesces concurrent rollout requests into batched engine
// calls: a request waits until either MaxBatch requests are pending or
// MaxWait has elapsed since the batch opened, then the whole batch
// runs as one fused RolloutBatch. This is the classic serving
// trade-off — a bounded latency tax on the first request of a batch
// buys per-sample throughput for everyone in it.
//
// Requests carry contexts (DoContext): the batch's wait horizon is
// capped by the tightest member deadline, and a request whose context
// has already expired is dropped at batch formation — a dead client
// never occupies a batch slot.
type Batcher struct {
	MaxBatch int
	MaxWait  time.Duration

	eng *Engine
	sc  *ScoreCache

	mu       sync.Mutex
	pending  []*call
	timer    *time.Timer
	timerAt  time.Time // when the armed flush timer fires
	gen      uint64    // invalidates stale flush timers
	closed   bool
	inflight sync.WaitGroup

	expired atomic.Int64
}

type call struct {
	req Request
	ctx context.Context
	ch  chan callResult
}

type callResult struct {
	resp *Response
	err  error
}

// NewBatcher wires a dynamic batcher over an engine and its score
// cache. maxBatch <= 0 defaults to the engine's fused batch width;
// maxWait <= 0 defaults to 2ms.
func NewBatcher(eng *Engine, sc *ScoreCache, maxBatch int, maxWait time.Duration) *Batcher {
	if maxBatch <= 0 {
		maxBatch = eng.Cfg.MaxBatch
	}
	if maxWait <= 0 {
		maxWait = 2 * time.Millisecond
	}
	return &Batcher{MaxBatch: maxBatch, MaxWait: maxWait, eng: eng, sc: sc}
}

// Do submits a request and blocks until its rollout is served (or the
// batcher is closed). Safe for arbitrary concurrency.
func (b *Batcher) Do(req Request) (*Response, error) {
	return b.DoContext(context.Background(), req)
}

// DoContext is Do with deadline/cancellation propagation: when ctx
// expires the caller unblocks immediately with ctx.Err(), and if the
// request has not yet entered a running batch it is dropped at batch
// formation. A member deadline tighter than MaxWait flushes the batch
// early, so a tight-deadline request is never parked past its budget.
func (b *Batcher) DoContext(ctx context.Context, req Request) (*Response, error) {
	if req.Steps <= 0 {
		return nil, &RequestError{Start: req.Start, Steps: req.Steps, Reason: "steps must be >= 1"}
	}
	if b.sc != nil {
		if err := b.sc.CheckStart(req.Start); err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c := &call{req: req, ctx: ctx, ch: make(chan callResult, 1)}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, ErrClosed
	}
	b.inflight.Add(1)
	b.pending = append(b.pending, c)
	switch {
	case len(b.pending) >= b.MaxBatch:
		batch := b.takeLocked()
		b.mu.Unlock()
		// The filling request runs the batch itself: it must wait for
		// its own result anyway, and this keeps the batcher free of a
		// dedicated dispatcher goroutine.
		b.run(batch)
	case len(b.pending) == 1:
		wait := b.MaxWait
		if dl, ok := ctx.Deadline(); ok {
			if until := time.Until(dl); until < wait {
				wait = until
			}
		}
		b.armLocked(wait)
		b.mu.Unlock()
	default:
		// A new member with a deadline tighter than the armed flush
		// caps the batch's wait horizon.
		if dl, ok := ctx.Deadline(); ok && dl.Before(b.timerAt) {
			b.armLocked(time.Until(dl))
		}
		b.mu.Unlock()
	}
	select {
	case r := <-c.ch:
		return r.resp, r.err
	case <-ctx.Done():
		// The result channel is buffered: if a running batch finishes
		// this request later, its send does not block or leak.
		return nil, ctx.Err()
	}
}

// armLocked (re)arms the flush timer to fire after d. Caller holds
// b.mu. Each arming bumps the generation so a stale timer that fires
// after a fill or re-arm claims nothing.
func (b *Batcher) armLocked(d time.Duration) {
	if d < 0 {
		d = 0
	}
	b.gen++
	gen := b.gen
	if b.timer != nil {
		b.timer.Stop()
	}
	b.timerAt = time.Now().Add(d)
	b.timer = time.AfterFunc(d, func() { b.flushTimer(gen) })
}

// takeLocked claims the pending batch (caller holds b.mu).
func (b *Batcher) takeLocked() []*call {
	batch := b.pending
	b.pending = nil
	b.gen++
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	return batch
}

// flushTimer fires when a partially filled batch hits its wait
// horizon (MaxWait or the tightest member deadline).
func (b *Batcher) flushTimer(gen uint64) {
	b.mu.Lock()
	if gen != b.gen {
		// A fill, re-arm, or Close already claimed this batch.
		b.mu.Unlock()
		return
	}
	batch := b.takeLocked()
	b.mu.Unlock()
	b.run(batch)
}

// DroppedExpired reports how many requests were dropped at batch
// formation because their context had already expired — dead clients
// that never occupied a batch slot.
func (b *Batcher) DroppedExpired() int64 { return b.expired.Load() }

// run executes one coalesced batch. Members whose context has expired
// are dropped before batch formation. Requests may ask for different
// horizons; the engine rolls the batch out to the longest one and each
// response keeps only its own steps (shorter trajectories ride along —
// their forward cost is shared, not added).
func (b *Batcher) run(batch []*call) {
	if len(batch) == 0 {
		return
	}
	defer func() {
		for range batch {
			b.inflight.Done()
		}
	}()
	live := batch[:0]
	for _, c := range batch {
		if err := c.ctx.Err(); err != nil {
			b.expired.Add(1)
			c.ch <- callResult{err: err}
			continue
		}
		live = append(live, c)
	}
	if len(live) == 0 {
		return
	}
	maxSteps := 0
	starts := make([]int, len(live))
	for i, c := range live {
		starts[i] = c.req.Start
		if c.req.Steps > maxSteps {
			maxSteps = c.req.Steps
		}
	}
	scores := b.eng.ScoredRolloutBatch(b.sc, starts, maxSteps)
	for i, c := range live {
		c.ch <- callResult{resp: &Response{
			Start:     c.req.Start,
			Steps:     c.req.Steps,
			Coalesced: len(live),
			Scores:    scores[i][:c.req.Steps],
		}}
	}
}

// Close stops accepting requests, drains the pending batch, and waits
// until every in-flight request has received its response.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		b.inflight.Wait()
		return
	}
	b.closed = true
	batch := b.takeLocked()
	b.mu.Unlock()
	b.run(batch)
	b.inflight.Wait()
}
