package infer

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrClosed is returned by Do after Close.
var ErrClosed = errors.New("infer: batcher closed")

// Request is one rollout to serve: the initial condition is the
// dataset sample at Start, advanced Steps lead steps with per-step
// scoring.
type Request struct {
	Start int
	Steps int
}

// Response is one served rollout.
type Response struct {
	Start, Steps int
	// Coalesced is how many requests shared this forward batch — the
	// observable effect of dynamic batching.
	Coalesced int
	Scores    []StepScore
}

// Batcher coalesces concurrent rollout requests into batched engine
// calls: a request waits until either MaxBatch requests are pending or
// MaxWait has elapsed since the batch opened, then the whole batch
// runs as one fused RolloutBatch. This is the classic serving
// trade-off — a bounded latency tax on the first request of a batch
// buys per-sample throughput for everyone in it.
type Batcher struct {
	MaxBatch int
	MaxWait  time.Duration

	eng *Engine
	sc  *ScoreCache

	mu       sync.Mutex
	pending  []*call
	timer    *time.Timer
	closed   bool
	inflight sync.WaitGroup
}

type call struct {
	req Request
	ch  chan callResult
}

type callResult struct {
	resp *Response
	err  error
}

// NewBatcher wires a dynamic batcher over an engine and its score
// cache. maxBatch <= 0 defaults to the engine's fused batch width;
// maxWait <= 0 defaults to 2ms.
func NewBatcher(eng *Engine, sc *ScoreCache, maxBatch int, maxWait time.Duration) *Batcher {
	if maxBatch <= 0 {
		maxBatch = eng.Cfg.MaxBatch
	}
	if maxWait <= 0 {
		maxWait = 2 * time.Millisecond
	}
	return &Batcher{MaxBatch: maxBatch, MaxWait: maxWait, eng: eng, sc: sc}
}

// Do submits a request and blocks until its rollout is served (or the
// batcher is closed). Safe for arbitrary concurrency.
func (b *Batcher) Do(req Request) (*Response, error) {
	if req.Steps <= 0 {
		return nil, fmt.Errorf("infer: request needs steps >= 1, got %d", req.Steps)
	}
	c := &call{req: req, ch: make(chan callResult, 1)}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, ErrClosed
	}
	b.inflight.Add(1)
	b.pending = append(b.pending, c)
	switch {
	case len(b.pending) >= b.MaxBatch:
		batch := b.takeLocked()
		b.mu.Unlock()
		// The filling request runs the batch itself: it must wait for
		// its own result anyway, and this keeps the batcher free of a
		// dedicated dispatcher goroutine.
		b.run(batch)
	case len(b.pending) == 1:
		b.timer = time.AfterFunc(b.MaxWait, b.flushTimeout)
		b.mu.Unlock()
	default:
		b.mu.Unlock()
	}
	r := <-c.ch
	return r.resp, r.err
}

// takeLocked claims the pending batch (caller holds b.mu).
func (b *Batcher) takeLocked() []*call {
	batch := b.pending
	b.pending = nil
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	return batch
}

// flushTimeout fires when a partially filled batch hits MaxWait.
func (b *Batcher) flushTimeout() {
	b.mu.Lock()
	batch := b.takeLocked()
	b.mu.Unlock()
	b.run(batch)
}

// run executes one coalesced batch. Requests may ask for different
// horizons; the engine rolls the batch out to the longest one and each
// response keeps only its own steps (shorter trajectories ride along —
// their forward cost is shared, not added).
func (b *Batcher) run(batch []*call) {
	if len(batch) == 0 {
		return
	}
	defer func() {
		for range batch {
			b.inflight.Done()
		}
	}()
	maxSteps := 0
	starts := make([]int, len(batch))
	for i, c := range batch {
		starts[i] = c.req.Start
		if c.req.Steps > maxSteps {
			maxSteps = c.req.Steps
		}
	}
	scores := b.eng.ScoredRolloutBatch(b.sc, starts, maxSteps)
	for i, c := range batch {
		c.ch <- callResult{resp: &Response{
			Start:     c.req.Start,
			Steps:     c.req.Steps,
			Coalesced: len(batch),
			Scores:    scores[i][:c.req.Steps],
		}}
	}
}

// Close stops accepting requests, drains the pending batch, and waits
// until every in-flight request has received its response.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		b.inflight.Wait()
		return
	}
	b.closed = true
	batch := b.takeLocked()
	b.mu.Unlock()
	b.run(batch)
	b.inflight.Wait()
}
