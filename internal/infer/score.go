package infer

import (
	"fmt"
	"sync"

	"orbit/internal/climate"
	"orbit/internal/metrics"
	"orbit/internal/tensor"
)

// StepScore is one rollout step's skill against the verifying truth.
type StepScore struct {
	Step      int       // 0-based rollout step
	LeadHours float64   // hours ahead of the initial condition
	RMSE      []float64 // per output channel, latitude-weighted
	ACC       []float64 // per output channel, vs day-of-year climatology
}

// ScoreCache serves the tensors rollout scoring needs — normalized
// input fields, channel-selected truth, and day-of-year climatology —
// caching each per time step. Generating a synthetic truth field costs
// ~5x a model forward, so serving throughput lives or dies on this
// cache; it is shared safely across concurrent requests and is
// per-model in the serving front end (normalization statistics differ
// between models).
type ScoreCache struct {
	DS    *climate.Dataset
	Chans []int // the channels scored (the engine's output mapping)

	mu     sync.Mutex
	fields map[int]*tensor.Tensor
	truth  map[int]*tensor.Tensor
	clim   map[int]*tensor.Tensor
}

// NewScoreCache builds an empty cache over a dataset. chans selects
// the scored channels; nil scores every channel.
func NewScoreCache(ds *climate.Dataset, chans []int) *ScoreCache {
	if chans == nil {
		chans = make([]int, len(ds.World.Vars))
		for i := range chans {
			chans[i] = i
		}
	}
	return &ScoreCache{
		DS:     ds,
		Chans:  chans,
		fields: make(map[int]*tensor.Tensor),
		truth:  make(map[int]*tensor.Tensor),
		clim:   make(map[int]*tensor.Tensor),
	}
}

// InputAt returns the cached normalized full-state field at
// dataset-relative step i — the rollout initial condition. The tensor
// is shared and must be treated as read-only.
func (sc *ScoreCache) InputAt(i int) *tensor.Tensor {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if f, ok := sc.fields[i]; ok {
		return f
	}
	f := sc.DS.World.Field(sc.DS.StartStep + i)
	sc.DS.Stats.Normalize(f)
	sc.fields[i] = f
	return f
}

// TruthAt returns the cached normalized truth restricted to the scored
// channels at dataset-relative step i.
func (sc *ScoreCache) TruthAt(i int) *tensor.Tensor {
	sc.mu.Lock()
	if t, ok := sc.truth[i]; ok {
		sc.mu.Unlock()
		return t
	}
	sc.mu.Unlock()
	full := sc.InputAt(i)
	t := climate.SelectChannels(full, sc.Chans)
	sc.mu.Lock()
	sc.truth[i] = t
	sc.mu.Unlock()
	return t
}

// ClimAt returns the cached normalized day-of-year climatology valid
// at dataset-relative step i, restricted to the scored channels.
func (sc *ScoreCache) ClimAt(i int) *tensor.Tensor {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if c, ok := sc.clim[i]; ok {
		return c
	}
	c := sc.DS.World.ClimatologyAt(sc.DS.StartStep + i)
	sc.DS.Stats.Normalize(c)
	c = climate.SelectChannels(c, sc.Chans)
	sc.clim[i] = c
	return c
}

// LeadHours returns the dataset's forecast horizon per rollout step.
func (sc *ScoreCache) LeadHours() float64 {
	return float64(sc.DS.LeadSteps) * 24 / climate.StepsPerDay
}

// CheckStart validates a rollout start index against the dataset
// window, returning a *RequestError outside [0, DS.Len()). Batcher and
// the serving layer call it at admission; ScoredRolloutBatch calls it
// again so even direct engine callers fail fast with a typed error
// instead of panicking deep inside the rollout.
func (sc *ScoreCache) CheckStart(start int) error {
	if n := sc.DS.Len(); start < 0 || start >= n {
		return &RequestError{Start: start, Reason: fmt.Sprintf("start outside [0,%d)", n)}
	}
	return nil
}

// ScoredRollout rolls out from the dataset sample at index start and
// scores every step's wRMSE and wACC against the verifying truth.
func (e *Engine) ScoredRollout(sc *ScoreCache, start, steps int) []StepScore {
	return e.ScoredRolloutBatch(sc, []int{start}, steps)[0]
}

// ScoredRolloutBatch is the batched ScoredRollout: the rollouts fuse
// into batched forward passes while each request keeps its own score
// trajectory.
func (e *Engine) ScoredRolloutBatch(sc *ScoreCache, starts []int, steps int) [][]StepScore {
	for _, s := range starts {
		if err := sc.CheckStart(s); err != nil {
			// No error return in this signature (the embedded-library
			// path); fail loudly at the boundary with the typed error
			// rather than an index panic deep in the rollout.
			panic(err)
		}
	}
	n := len(starts)
	lead := sc.LeadHours()
	ics := make([]*tensor.Tensor, n)
	leads := make([]float64, n)
	scores := make([][]StepScore, n)
	for i, s := range starts {
		ics[i] = sc.InputAt(s)
		leads[i] = lead
		scores[i] = make([]StepScore, steps)
	}
	// Warm the shared caches before fanning out: every trajectory from
	// the same window reuses one generated truth/climatology tensor.
	for _, s := range starts {
		for k := 0; k < steps; k++ {
			idx := s + (k+1)*sc.DS.LeadSteps
			sc.TruthAt(idx)
			sc.ClimAt(idx)
		}
	}
	e.RolloutBatch(ics, steps, leads, func(sample, step int, pred *tensor.Tensor) {
		idx := starts[sample] + (step+1)*sc.DS.LeadSteps
		truth := sc.TruthAt(idx)
		clim := sc.ClimAt(idx)
		scores[sample][step] = StepScore{
			Step:      step,
			LeadHours: float64(step+1) * lead,
			RMSE:      metrics.WeightedRMSE(pred, truth),
			ACC:       metrics.WeightedACC(pred, truth, clim),
		}
	})
	return scores
}
