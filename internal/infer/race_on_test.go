//go:build race

package infer

// raceEnabled gates the AllocsPerRun assertions; see race_off_test.go.
const raceEnabled = true
