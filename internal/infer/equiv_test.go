package infer

import (
	"fmt"
	"testing"

	"orbit/internal/climate"
	"orbit/internal/tensor"
	"orbit/internal/train"
	"orbit/internal/vit"
)

const (
	eqChans  = 6
	eqHeight = 8
	eqWidth  = 16
)

func eqModel(t testing.TB, outChans int, seed uint64) *vit.Model {
	t.Helper()
	cfg := vit.Tiny(eqChans, eqHeight, eqWidth)
	if outChans > 0 {
		cfg.OutChannels = outChans
	}
	m, err := vit.New(cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func eqInput(seed uint64) *tensor.Tensor {
	rng := tensor.NewRNG(seed)
	return tensor.Randn(rng, 1, eqChans, eqHeight, eqWidth)
}

// mustIdentical fails unless a and b are bit-identical.
func mustIdentical(t *testing.T, what string, a, b *tensor.Tensor) {
	t.Helper()
	if !a.SameShape(b) {
		t.Fatalf("%s: shapes %v vs %v", what, a.Shape(), b.Shape())
	}
	ad, bd := a.Data(), b.Data()
	for i := range ad {
		if ad[i] != bd[i] {
			t.Fatalf("%s: element %d differs: %v vs %v (max diff %g)",
				what, i, ad[i], bd[i], tensor.MaxDiff(a, b))
		}
	}
}

// TestPlanMatchesModelForward pins the tentpole numerics claim: the
// fused batched inference plan computes, per sample, exactly what the
// training-path vit.Model.Forward computes — bit-identical, at batch 1
// and fused batch 8, for distinct leads per sample.
func TestPlanMatchesModelForward(t *testing.T) {
	m := eqModel(t, 0, 11)
	p := NewPlan(m, 8)

	var xs []*tensor.Tensor
	var leads []float64
	for b := 0; b < 8; b++ {
		xs = append(xs, eqInput(uint64(100+b)))
		leads = append(leads, float64(6*(b+1)))
	}

	// Reference outputs through the module path (cloned: the model
	// head reuses its output buffer... it does not, PredictionHead
	// allocates, but cloning keeps the test independent of that).
	var want []*tensor.Tensor
	for b := range xs {
		want = append(want, m.Forward(xs[b], leads[b]).Clone())
	}

	single := p.Forward(xs[:1], leads[:1])
	mustIdentical(t, "plan batch-1 vs model", single[0], want[0])

	outs := p.Forward(xs, leads)
	for b := range xs {
		mustIdentical(t, fmt.Sprintf("plan batch-8 sample %d vs model", b), outs[b], want[b])
	}

	// A second pass through the (now steady-state) plan must reproduce
	// itself — buffer reuse must not leak state across calls.
	again := p.Forward(xs, leads)
	for b := range xs {
		mustIdentical(t, fmt.Sprintf("plan determinism sample %d", b), again[b], want[b])
	}
}

// trainerRollout is the pre-inference-subsystem way to roll a model
// out: thread state through train.Forecaster.Predict one step at a
// time, scattering predictions into the carried state.
func trainerRollout(f train.Forecaster, chans []int, ic *tensor.Tensor, steps int, lead float64) []*tensor.Tensor {
	state := ic.Clone()
	hw := state.Dim(1) * state.Dim(2)
	var preds []*tensor.Tensor
	for s := 0; s < steps; s++ {
		pred := f.Predict(state, lead).Clone()
		preds = append(preds, pred)
		for i, c := range chans {
			copy(state.Data()[c*hw:(c+1)*hw], pred.Data()[i*hw:(i+1)*hw])
		}
	}
	return preds
}

// TestRolloutMatchesTrainerPath proves the engine's batched
// autoregressive rollout ≡ the old per-sample Trainer-based forecast
// path: bit-identical single-sample trajectories, and fused batched
// trajectories bit-identical to the single-sample ones (well inside
// the 1e-6 the acceptance criteria ask for).
func TestRolloutMatchesTrainerPath(t *testing.T) {
	resChans := []int{1, 3, 4}
	const steps = 3
	for _, residual := range []bool{false, true} {
		name := "absolute"
		var m *vit.Model
		var f train.Forecaster
		var cfg Config
		var chans []int
		if residual {
			name = "residual"
			m = eqModel(t, len(resChans), 7)
			f = train.Forecaster{Model: m, ResidualChans: resChans}
			cfg = Config{ResidualChans: resChans}
			chans = resChans
		} else {
			m = eqModel(t, 0, 7)
			f = train.Forecaster{Model: m}
			cfg = Config{}
			chans = []int{0, 1, 2, 3, 4, 5}
		}
		t.Run(name, func(t *testing.T) {
			eng, err := NewEngine(m, cfg)
			if err != nil {
				t.Fatal(err)
			}
			ics := []*tensor.Tensor{eqInput(41), eqInput(42), eqInput(43), eqInput(44)}
			leads := []float64{24, 24, 24, 24}

			// Reference: the old path, one sample at a time.
			want := make([][]*tensor.Tensor, len(ics))
			for b, ic := range ics {
				want[b] = trainerRollout(f, chans, ic, steps, leads[b])
			}

			// Engine single-sample.
			for b, ic := range ics {
				got := make([]*tensor.Tensor, steps)
				eng.Rollout(ic, steps, leads[b], func(_, s int, pred *tensor.Tensor) {
					got[s] = pred.Clone()
				})
				for s := 0; s < steps; s++ {
					mustIdentical(t, fmt.Sprintf("%s single sample %d step %d", name, b, s), got[s], want[b][s])
				}
			}

			// Engine fused batch.
			got := make([][]*tensor.Tensor, len(ics))
			for b := range got {
				got[b] = make([]*tensor.Tensor, steps)
			}
			eng.RolloutBatch(ics, steps, leads, func(b, s int, pred *tensor.Tensor) {
				got[b][s] = pred.Clone()
			})
			for b := range ics {
				for s := 0; s < steps; s++ {
					if d := tensor.MaxDiff(got[b][s], want[b][s]); d > 1e-6 {
						t.Fatalf("%s batched sample %d step %d: max diff %g > 1e-6", name, b, s, d)
					}
					mustIdentical(t, fmt.Sprintf("%s batched sample %d step %d", name, b, s), got[b][s], want[b][s])
				}
			}
		})
	}
}

// TestTPForwardMatchesSingleDevice proves the TP-sharded forward ≡ the
// single-device forward to summation-order tolerance.
func TestTPForwardMatchesSingleDevice(t *testing.T) {
	m := eqModel(t, 0, 13)
	x := eqInput(99)
	want := m.Forward(x, 24).Clone()

	for _, tp := range []int{2, 4} {
		f, err := NewTPForecaster(m, tp)
		if err != nil {
			t.Fatal(err)
		}
		got := f.Forward(x, 24)
		if d := tensor.MaxDiff(got, want); d > 1e-6 {
			t.Fatalf("TP=%d forward differs from single-device by %g > 1e-6", tp, d)
		}
	}
}

// TestTPEngineRollout drives the engine end to end in TP mode and pins
// it to the single-device engine at rollout tolerance.
func TestTPEngineRollout(t *testing.T) {
	m := eqModel(t, 0, 17)
	ref, err := NewEngine(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	tpe, err := NewEngine(m, Config{TP: 2})
	if err != nil {
		t.Fatal(err)
	}
	ics := []*tensor.Tensor{eqInput(55), eqInput(56)}
	leads := []float64{24, 24}
	const steps = 2
	var want, got [2][steps]*tensor.Tensor
	ref.RolloutBatch(ics, steps, leads, func(b, s int, pred *tensor.Tensor) {
		want[b][s] = pred.Clone()
	})
	tpe.RolloutBatch(ics, steps, leads, func(b, s int, pred *tensor.Tensor) {
		got[b][s] = pred.Clone()
	})
	for b := 0; b < 2; b++ {
		for s := 0; s < steps; s++ {
			if d := tensor.MaxDiff(got[b][s], want[b][s]); d > 1e-5 {
				t.Fatalf("TP rollout sample %d step %d: max diff %g", b, s, d)
			}
		}
	}
}

// TestEngineConfigValidation covers the channel-mapping error paths.
func TestEngineConfigValidation(t *testing.T) {
	sub := eqModel(t, 3, 3)
	if _, err := NewEngine(sub, Config{}); err == nil {
		t.Fatal("subset-output model without a channel mapping must be rejected")
	}
	if _, err := NewEngine(sub, Config{OutputChans: []int{0, 1}}); err == nil {
		t.Fatal("wrong-length mapping must be rejected")
	}
	if _, err := NewEngine(sub, Config{OutputChans: []int{0, 1, 99}}); err == nil {
		t.Fatal("out-of-range mapping must be rejected")
	}
	if _, err := NewEngine(sub, Config{OutputChans: []int{0, 1, 2}}); err != nil {
		t.Fatalf("valid mapping rejected: %v", err)
	}
	if _, err := NewEngine(sub, Config{ResidualChans: []int{2, 3, 4}, TP: 3}); err == nil {
		t.Fatal("TP not dividing heads must be rejected")
	}
}

// TestScoredRolloutBatch exercises scoring against the cached truth
// and climatology tensors.
func TestScoredRolloutBatch(t *testing.T) {
	vars := climate.RegistrySmall()
	w := climate.NewWorld(vars, eqHeight, eqWidth, climate.ERA5Source())
	stats := w.EstimateStats(8)
	ds := climate.NewDataset(w, stats, 0, 64, 2)

	cfg := vit.Tiny(len(vars), eqHeight, eqWidth)
	m, err := vit.New(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sc := NewScoreCache(ds, nil)
	scores := eng.ScoredRolloutBatch(sc, []int{0, 4}, 3)
	if len(scores) != 2 {
		t.Fatalf("2 rollouts, got %d score tracks", len(scores))
	}
	for b, track := range scores {
		if len(track) != 3 {
			t.Fatalf("rollout %d: %d steps scored, want 3", b, len(track))
		}
		for s, st := range track {
			if st.LeadHours != float64(s+1)*sc.LeadHours() {
				t.Fatalf("rollout %d step %d: lead %v", b, s, st.LeadHours)
			}
			if len(st.RMSE) != len(vars) || len(st.ACC) != len(vars) {
				t.Fatalf("rollout %d step %d: %d/%d channel scores", b, s, len(st.RMSE), len(st.ACC))
			}
			for c := range st.RMSE {
				if st.RMSE[c] <= 0 {
					t.Fatalf("rollout %d step %d chan %d: non-positive wRMSE %v (untrained model)", b, s, c, st.RMSE[c])
				}
				if st.ACC[c] < -1.000001 || st.ACC[c] > 1.000001 {
					t.Fatalf("rollout %d step %d chan %d: wACC %v outside [-1,1]", b, s, c, st.ACC[c])
				}
			}
		}
	}
}
