package infer

import (
	"fmt"
	"sync"

	"orbit/internal/cluster"
	"orbit/internal/comm"
	"orbit/internal/parallel"
	"orbit/internal/tensor"
	"orbit/internal/vit"
)

// TPForecaster runs a model's transformer trunk tensor-parallel over a
// simulated cluster group, forward-only: the serving path for models
// whose weights do not fit one device. Each TP rank owns the Megatron
// column/row shard of every block (parallel.TPBlock) with no gradient
// accumulators; the stem and head — a small fraction of the weights —
// run replicated on the driver through a forward-only model replica.
// Block outputs are all-reduced inside TPBlock.Forward, so every rank
// holds the full activations and the driver's rank-0 stream feeds the
// head.
type TPForecaster struct {
	TP int

	rep     *vit.Model // forward-only stem+head replica
	machine *cluster.Machine
	group   *comm.Group
	ranks   [][]*parallel.TPBlock // [rank][layer]

	mu   sync.Mutex // one forward at a time through the shared group
	outs []*tensor.Tensor
}

// NewTPForecaster shards m's blocks across a tp-wide tensor-parallel
// group on a simulated machine. tp must divide the head count (the
// architectural TP limit the paper contrasts with Hybrid-STOP).
func NewTPForecaster(m *vit.Model, tp int) (*TPForecaster, error) {
	if tp < 2 {
		return nil, fmt.Errorf("infer: TP forecaster needs tp >= 2, got %d", tp)
	}
	if m.Config.Heads%tp != 0 {
		return nil, fmt.Errorf("infer: %d heads not divisible by TP size %d", m.Config.Heads, tp)
	}
	spec := cluster.Frontier()
	f := &TPForecaster{
		TP:      tp,
		rep:     m.InferenceReplica(),
		machine: cluster.NewMachine(spec, 1, tp),
	}
	f.group = comm.NewGroup(f.machine.Devices[:tp])
	f.ranks = make([][]*parallel.TPBlock, tp)
	for r := 0; r < tp; r++ {
		for _, ref := range m.Blocks {
			b := parallel.NewTPBlock(r, f.group, ref)
			// Forward-only: drop the shard gradient mirrors.
			for _, p := range b.Params() {
				p.Grad = nil
			}
			f.ranks[r] = append(f.ranks[r], b)
		}
	}
	f.outs = make([]*tensor.Tensor, tp)
	return f, nil
}

// Machine returns the simulated cluster backing the forecaster's TP
// group. Fault-injection harnesses use it to kill serving devices
// (cluster.FaultInjector.Arm, Device.Kill) the same way the elastic
// trainer's chaos tests do.
func (f *TPForecaster) Machine() *cluster.Machine { return f.machine }

// Machine returns the simulated cluster machine backing a TP-sharded
// engine, nil for single-device engines (which run in-process and
// have no simulated hardware to fail).
func (e *Engine) Machine() *cluster.Machine {
	if e.tp == nil {
		return nil
	}
	return e.tp.machine
}

// CheckHealth returns a *cluster.DeadDeviceError when any device
// backing the engine has been killed by fault injection, nil for
// healthy (and for single-device) engines. Like the elastic trainer,
// serving health is checked at batch boundaries: an in-flight forward
// on a just-killed device completes (the SPMD walk cannot deadlock on
// a latched death), and the next health check observes the loss.
func (e *Engine) CheckHealth() error {
	if e.tp == nil {
		return nil
	}
	for _, d := range e.tp.machine.Devices {
		if err := d.CheckAlive(); err != nil {
			return err
		}
	}
	return nil
}

// Forward runs one sample [C, H, W] through the TP-sharded trunk,
// producing [OutC, H, W]. The result is head-owned and valid until the
// forecaster's next call. Within each block, partial sums are reduced
// across ranks in rank order, so the output matches the single-device
// forward to float summation-order tolerance (the equivalence test
// pins 1e-6).
func (f *TPForecaster) Forward(x *tensor.Tensor, leadHours float64) *tensor.Tensor {
	f.mu.Lock()
	defer f.mu.Unlock()
	tok := f.rep.Agg.Forward(f.rep.Patch.Forward(x))
	tok = f.rep.Pos.Forward(tok)
	tok = f.rep.Lead.ForwardWithLead(tok, leadHours)

	// SPMD over the TP group: every rank walks its shard of the block
	// stack; the per-block all-reduces rendezvous inside Forward.
	var wg sync.WaitGroup
	for r := 0; r < f.TP; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			h := tok
			for _, b := range f.ranks[r] {
				h = b.Forward(h)
			}
			f.outs[r] = h
		}(r)
	}
	wg.Wait()
	return f.rep.Head.Forward(f.outs[0])
}
