package infer

import (
	"runtime"
	"testing"

	"orbit/internal/vit"
)

// TestGoldenRolloutDeterministicAcrossGOMAXPROCS reruns the golden
// rollout at GOMAXPROCS 1, 4 and 8 and requires every predicted value
// to be bit-identical: the threaded kernels' fixed tile ownership
// means inference output cannot depend on how many workers ran it.
func TestGoldenRolloutDeterministicAcrossGOMAXPROCS(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	var ref [][]float32
	for i, procs := range []int{1, 4, 8} {
		runtime.GOMAXPROCS(procs)
		m, err := vit.New(goldenConfig(), goldenModelSeed)
		if err != nil {
			t.Fatal(err)
		}
		steps := goldenRollout(t, m)
		if i == 0 {
			ref = steps
			continue
		}
		for s := range steps {
			for c := range steps[s] {
				if steps[s][c] != ref[s][c] {
					t.Fatalf("GOMAXPROCS=%d: rollout step %d diverges at %d: %v != %v",
						procs, s, c, steps[s][c], ref[s][c])
				}
			}
		}
	}
}
