// Package infer is ORBIT's forward-only inference subsystem: the
// serving counterpart of internal/train. It loads any checkpoint kind
// (weights-only v1, training-state v2, or a PR 3 sharded manifest via
// the reshard path), pre-plans zero-allocation workspaces over the
// destination-passing tensor kernels, and executes batched
// autoregressive rollouts — initial condition to N lead steps — with
// per-step wRMSE/wACC scoring against climatology.
//
// The layer contract differs from package nn: nn modules cache
// activations for a later Backward, so their forward pass pays for
// memory inference never uses. The Plan in this file re-implements the
// model forward with inference-only buffers and a fused batch
// dimension (B samples run as one [B·T, D] token matrix through every
// linear layer and as a [B·H, T, d] stack through attention). Every
// floating-point operation is kept in the exact order of the serial
// vit.Model.Forward, so a Plan's output is bit-identical to the
// training-path forward for each sample — the equivalence suite pins
// this.
package infer

import (
	"fmt"
	"math"

	"orbit/internal/nn"
	"orbit/internal/tensor"
	"orbit/internal/vit"
)

// packedW caches the packed transpose of a weight matrix (the dot
// kernel's operand layout), refreshed when the weight's version
// changes — weights only move on explicit loads, so in steady state
// every forward skips the repack.
type packedW struct {
	buf []float32
	ver uint64
}

func (p *packedW) of(w *tensor.Tensor) []float32 {
	if p.ver != w.Version()+1 {
		if cap(p.buf) < w.Len() {
			p.buf = make([]float32, w.Len())
		}
		p.buf = p.buf[:w.Len()]
		tensor.PackTransposedInto(p.buf, w)
		p.ver = w.Version() + 1
	}
	return p.buf
}

// siteW is one matmul site's weight operand. When the plan serves a
// block-quantized checkpoint the site holds the weight's quantized
// container and the dequant-fused kernel reads it directly — no f32
// copy of the matrix exists in the plan at all, which is where the
// quantized-serving memory win comes from (the packed transpose was a
// per-worker full-precision copy of every weight). Otherwise the site
// falls back to the lazily packed f32 transpose.
type siteW struct {
	pk packedW
	q  *tensor.Quantized
}

// matmul runs dst = x·W + bias through whichever operand the site
// holds. Both paths are bit-identical for the same underlying f32
// weight values (the fused quantized kernel reproduces the packed
// kernel's exact reduction order over the dequantized panels).
func (s *siteW) matmul(dst, x *tensor.Tensor, w *tensor.Tensor, n int, bias *tensor.Tensor) *tensor.Tensor {
	if s.q != nil {
		return tensor.MatMulQuantInto(dst, x, s.q, bias)
	}
	return tensor.MatMulPackedBInto(dst, x, s.pk.of(w), n, bias)
}

// blockPacked holds the weight operands of one transformer block.
type blockPacked struct {
	wq, wk, wv, wo, fc1, fc2 siteW
}

// batchBufs are the tensor headers for one fused batch size n. The
// headers view the Plan's shared backing arrays (allocated once for
// MaxBatch), so building the set for a new n costs only slice headers
// and happens once per distinct size.
type batchBufs struct {
	patches    *tensor.Tensor   // [n·T, P²] per-channel patch staging
	e          *tensor.Tensor   // [C·n·T, D] aggregation input
	eC         []*tensor.Tensor // per-channel [n·T, D] views of e
	kMat, vMat *tensor.Tensor   // [C·n·T, D]
	x          *tensor.Tensor   // [n·T, D] token stream (stem out, block in/out)
	lnBuf      *tensor.Tensor   // [n·T, D] layer-norm output
	q, k, v    *tensor.Tensor   // [n·T, D]
	qh, kh, vh *tensor.Tensor   // [n·H, T, d] head-major stacks
	qn, kn     *tensor.Tensor   // post-QK-norm stacks (alias qh/kh without QKNorm)
	probs      *tensor.Tensor   // [n·H, T, T]
	outH       *tensor.Tensor   // [n·H, T, d]
	concat     *tensor.Tensor   // [n·T, D]
	attnOut    *tensor.Tensor   // [n·T, D]
	h          *tensor.Tensor   // [n·T, D] post-attention residual
	fc1, th, g *tensor.Tensor   // [n·T, 4D] MLP pre-activation, tanh cache, GELU out
	mlpOut     *tensor.Tensor   // [n·T, D]
	headTok    *tensor.Tensor   // [n·T, P²·OutC]

	// Per-sample views for the token-major ⇄ head-major regroups.
	qRows, kRows, vRows []*tensor.Tensor // [T, D] rows of q/k/v
	qhB, khB, vhB       []*tensor.Tensor // [H, T, d] slices of qh/kh/vh
	outHB               []*tensor.Tensor // [H, T, d] slices of outH
	concatRows          []*tensor.Tensor // [T, D] rows of concat
	outs                []*tensor.Tensor // [OutC, H, W] per-sample outputs
}

// Plan is a pre-planned zero-allocation forward executor for a model
// at a bounded batch size. A Plan is not safe for concurrent use; the
// Engine gives each worker its own.
type Plan struct {
	Model    *vit.Model
	MaxBatch int

	// Geometry, resolved once.
	c, h, w, p, t, d, heads, hd, outC int

	patchW []siteW
	aggK   siteW
	aggV   siteW
	leadW  siteW
	blocks []blockPacked
	headW  siteW

	// Backing arrays sized for MaxBatch, shared by every batchBufs.
	patchesB, eB, kMatB, vMatB        []float32
	xB, lnB, qB, kB, vB               []float32
	qhB, khB, vhB, qnB, knB           []float32
	probsB, outHB, concatB, attnB, hB []float32
	fc1B, thB, gB, mlpB, headB        []float32
	outsB                             []float32
	scoresRow, alphaRow               []float32
	leadFeat, leadOff                 *tensor.Tensor

	sized map[int]*batchBufs
}

// NewPlan builds a forward plan for up to maxBatch fused samples,
// allocating every workspace up front so steady-state Forward calls
// perform no heap allocations.
func NewPlan(m *vit.Model, maxBatch int) *Plan {
	return NewPlanQ(m, maxBatch, nil)
}

// NewPlanQ builds a plan whose matmul sites read the given quantized
// weight containers (keyed by parameter name, as LoadModelQuantized
// returns them) through the dequant-fused kernel. Weights without a
// container — norms, biases, embeddings, and any matrix the saver left
// float32 — use the packed f32 path. A nil or empty map degenerates to
// NewPlan.
func NewPlanQ(m *vit.Model, maxBatch int, qs map[string]*tensor.Quantized) *Plan {
	if maxBatch < 1 {
		maxBatch = 1
	}
	cfg := m.Config
	p := &Plan{
		Model:    m,
		MaxBatch: maxBatch,
		c:        cfg.Channels,
		h:        cfg.Height,
		w:        cfg.Width,
		p:        cfg.Patch,
		t:        cfg.Tokens(),
		d:        cfg.EmbedDim,
		heads:    cfg.Heads,
		hd:       cfg.EmbedDim / cfg.Heads,
		outC:     cfg.OutChannels,
		patchW:   make([]siteW, cfg.Channels),
		blocks:   make([]blockPacked, len(m.Blocks)),
		sized:    make(map[int]*batchBufs),
	}
	if len(qs) > 0 {
		// Resolve containers by the weight tensor they quantize: the
		// checkpoint keys them by parameter name, and matching through
		// Params() keeps the plan free of name-pattern coupling.
		byTensor := make(map[*tensor.Tensor]*tensor.Quantized, len(qs))
		for _, par := range m.Params() {
			if q, ok := qs[par.Name]; ok {
				byTensor[par.W] = q
			}
		}
		for c := range p.patchW {
			p.patchW[c].q = byTensor[m.Patch.Weights[c].W]
		}
		p.aggK.q = byTensor[m.Agg.WK.Weight.W]
		p.aggV.q = byTensor[m.Agg.WV.Weight.W]
		p.leadW.q = byTensor[m.Lead.Proj.Weight.W]
		for li, blk := range m.Blocks {
			pk := &p.blocks[li]
			pk.wq.q = byTensor[blk.Attn.WQ.Weight.W]
			pk.wk.q = byTensor[blk.Attn.WK.Weight.W]
			pk.wv.q = byTensor[blk.Attn.WV.Weight.W]
			pk.wo.q = byTensor[blk.Attn.WO.Weight.W]
			pk.fc1.q = byTensor[blk.MLP.FC1.Weight.W]
			pk.fc2.q = byTensor[blk.MLP.FC2.Weight.W]
		}
		p.headW.q = byTensor[m.Head.Proj.Weight.W]
	}
	B, T, D, C := maxBatch, p.t, p.d, p.c
	pp := p.p * p.p
	p.patchesB = make([]float32, B*T*pp)
	p.eB = make([]float32, C*B*T*D)
	p.kMatB = make([]float32, C*B*T*D)
	p.vMatB = make([]float32, C*B*T*D)
	for _, buf := range []*[]float32{&p.xB, &p.lnB, &p.qB, &p.kB, &p.vB, &p.qhB, &p.khB, &p.vhB, &p.outHB, &p.concatB, &p.attnB, &p.hB, &p.mlpB} {
		*buf = make([]float32, B*T*D)
	}
	if cfg.QKNorm {
		p.qnB = make([]float32, B*T*D)
		p.knB = make([]float32, B*T*D)
	}
	p.probsB = make([]float32, B*p.heads*T*T)
	p.fc1B = make([]float32, B*T*4*D)
	p.thB = make([]float32, B*T*4*D)
	p.gB = make([]float32, B*T*4*D)
	p.headB = make([]float32, B*T*pp*p.outC)
	p.outsB = make([]float32, B*p.outC*p.h*p.w)
	p.scoresRow = make([]float32, C)
	p.alphaRow = make([]float32, C)
	p.leadFeat = tensor.New(1, D)
	p.leadOff = tensor.New(1, D)
	return p
}

// bufs returns (building once) the tensor headers for batch size n.
func (p *Plan) bufs(n int) *batchBufs {
	if bb, ok := p.sized[n]; ok {
		return bb
	}
	if n < 1 || n > p.MaxBatch {
		panic(fmt.Sprintf("infer: batch %d outside plan capacity [1,%d]", n, p.MaxBatch))
	}
	T, D, C, H, hd := p.t, p.d, p.c, p.heads, p.hd
	pp := p.p * p.p
	bb := &batchBufs{
		patches: tensor.FromSlice(p.patchesB[:n*T*pp], n*T, pp),
		e:       tensor.FromSlice(p.eB[:C*n*T*D], C*n*T, D),
		kMat:    tensor.FromSlice(p.kMatB[:C*n*T*D], C*n*T, D),
		vMat:    tensor.FromSlice(p.vMatB[:C*n*T*D], C*n*T, D),
		x:       tensor.FromSlice(p.xB[:n*T*D], n*T, D),
		lnBuf:   tensor.FromSlice(p.lnB[:n*T*D], n*T, D),
		q:       tensor.FromSlice(p.qB[:n*T*D], n*T, D),
		k:       tensor.FromSlice(p.kB[:n*T*D], n*T, D),
		v:       tensor.FromSlice(p.vB[:n*T*D], n*T, D),
		qh:      tensor.FromSlice(p.qhB[:n*T*D], n*H, T, hd),
		kh:      tensor.FromSlice(p.khB[:n*T*D], n*H, T, hd),
		vh:      tensor.FromSlice(p.vhB[:n*T*D], n*H, T, hd),
		probs:   tensor.FromSlice(p.probsB[:n*H*T*T], n*H, T, T),
		outH:    tensor.FromSlice(p.outHB[:n*T*D], n*H, T, hd),
		concat:  tensor.FromSlice(p.concatB[:n*T*D], n*T, D),
		attnOut: tensor.FromSlice(p.attnB[:n*T*D], n*T, D),
		h:       tensor.FromSlice(p.hB[:n*T*D], n*T, D),
		fc1:     tensor.FromSlice(p.fc1B[:n*T*4*D], n*T, 4*D),
		th:      tensor.FromSlice(p.thB[:n*T*4*D], n*T, 4*D),
		g:       tensor.FromSlice(p.gB[:n*T*4*D], n*T, 4*D),
		mlpOut:  tensor.FromSlice(p.mlpB[:n*T*D], n*T, D),
		headTok: tensor.FromSlice(p.headB[:n*T*pp*p.outC], n*T, pp*p.outC),
	}
	if p.Model.Config.QKNorm {
		bb.qn = tensor.FromSlice(p.qnB[:n*T*D], n*H, T, hd)
		bb.kn = tensor.FromSlice(p.knB[:n*T*D], n*H, T, hd)
	} else {
		bb.qn, bb.kn = bb.qh, bb.kh
	}
	for c := 0; c < C; c++ {
		bb.eC = append(bb.eC, tensor.FromSlice(p.eB[c*n*T*D:(c+1)*n*T*D], n*T, D))
	}
	for b := 0; b < n; b++ {
		rows := func(back []float32) *tensor.Tensor {
			return tensor.FromSlice(back[b*T*D:(b+1)*T*D], T, D)
		}
		bb.qRows = append(bb.qRows, rows(p.qB))
		bb.kRows = append(bb.kRows, rows(p.kB))
		bb.vRows = append(bb.vRows, rows(p.vB))
		bb.concatRows = append(bb.concatRows, rows(p.concatB))
		stack := func(back []float32) *tensor.Tensor {
			return tensor.FromSlice(back[b*H*T*hd:(b+1)*H*T*hd], H, T, hd)
		}
		bb.qhB = append(bb.qhB, stack(p.qhB))
		bb.khB = append(bb.khB, stack(p.khB))
		bb.vhB = append(bb.vhB, stack(p.vhB))
		bb.outHB = append(bb.outHB, stack(p.outHB))
		sz := p.outC * p.h * p.w
		bb.outs = append(bb.outs, tensor.FromSlice(p.outsB[b*sz:(b+1)*sz], p.outC, p.h, p.w))
	}
	p.sized[n] = bb
	return bb
}

// Forward runs the fused batched forward over len(xs) samples (each
// [C, H, W]) with per-sample lead times, returning plan-owned
// [OutC, H, W] prediction tensors valid until the plan's next call.
// Per sample, the result is bit-identical to Model.Forward.
func (p *Plan) Forward(xs []*tensor.Tensor, leads []float64) []*tensor.Tensor {
	n := len(xs)
	if n == 0 || n != len(leads) {
		panic(fmt.Sprintf("infer: Forward with %d samples, %d leads", n, len(leads)))
	}
	bb := p.bufs(n)
	m := p.Model

	// Patch embedding, fused over the batch per channel: samples stack
	// along the token rows, so one packed matmul per channel replaces
	// n (and the model path's per-call weight repack disappears).
	hw := p.h * p.w
	for c := 0; c < p.c; c++ {
		for b, x := range xs {
			p.extractPatches(x.Data()[c*hw:(c+1)*hw], bb.patches.Data()[b*p.t*p.p*p.p:])
		}
		p.patchW[c].matmul(bb.eC[c], bb.patches, m.Patch.Weights[c].W, p.d, m.Patch.Biases[c].W)
	}

	// Variable aggregation over t' = n·T fused token positions.
	p.aggregate(bb, n)

	// Positional embedding per sample, lead-time conditioning per
	// sample (leads may differ across a coalesced batch).
	pos := m.Pos.Embed.W.Data()
	xd := bb.x.Data()
	for b := 0; b < n; b++ {
		base := b * p.t * p.d
		for i := 0; i < p.t*p.d; i++ {
			xd[base+i] += pos[i]
		}
	}
	for b := 0; b < n; b++ {
		p.leadInto(xd[b*p.t*p.d:(b+1)*p.t*p.d], leads[b])
	}

	// Transformer blocks, token rows fused across the batch; attention
	// runs head-major with n·H batch entries so per-head products stay
	// per-sample.
	scale := float32(1 / math.Sqrt(float64(p.hd)))
	for li, blk := range m.Blocks {
		pk := &p.blocks[li]
		lnInto(bb.lnBuf, bb.x, blk.LN1)
		pk.wq.matmul(bb.q, bb.lnBuf, blk.Attn.WQ.Weight.W, p.d, blk.Attn.WQ.Bias.W)
		pk.wk.matmul(bb.k, bb.lnBuf, blk.Attn.WK.Weight.W, p.d, blk.Attn.WK.Bias.W)
		pk.wv.matmul(bb.v, bb.lnBuf, blk.Attn.WV.Weight.W, p.d, blk.Attn.WV.Bias.W)
		for b := 0; b < n; b++ {
			tensor.SplitHeadsInto(bb.qhB[b], bb.qRows[b], p.heads)
			tensor.SplitHeadsInto(bb.khB[b], bb.kRows[b], p.heads)
			tensor.SplitHeadsInto(bb.vhB[b], bb.vRows[b], p.heads)
		}
		if blk.Attn.QKNorm {
			lnInto(bb.qn, bb.qh, blk.Attn.QNorm)
			lnInto(bb.kn, bb.kh, blk.Attn.KNorm)
		}
		tensor.BatchedMatMulTransBScaledInto(bb.probs, bb.qn, bb.kn, scale)
		tensor.SoftmaxInto(bb.probs, bb.probs)
		tensor.BatchedMatMulInto(bb.outH, bb.probs, bb.vh)
		for b := 0; b < n; b++ {
			tensor.MergeHeadsInto(bb.concatRows[b], bb.outHB[b], p.heads)
		}
		pk.wo.matmul(bb.attnOut, bb.concat, blk.Attn.WO.Weight.W, p.d, blk.Attn.WO.Bias.W)
		tensor.AddInto(bb.h, bb.x, bb.attnOut)

		lnInto(bb.lnBuf, bb.h, blk.LN2)
		pk.fc1.matmul(bb.fc1, bb.lnBuf, blk.MLP.FC1.Weight.W, 4*p.d, blk.MLP.FC1.Bias.W)
		tensor.GELUCachedInto(bb.g, bb.th, bb.fc1)
		pk.fc2.matmul(bb.mlpOut, bb.g, blk.MLP.FC2.Weight.W, p.d, blk.MLP.FC2.Bias.W)
		tensor.AddInto(bb.x, bb.h, bb.mlpOut)
	}

	// Prediction head: fused norm + projection, per-sample unpatchify.
	lnInto(bb.lnBuf, bb.x, m.Head.Norm)
	p.headW.matmul(bb.headTok, bb.lnBuf, m.Head.Proj.Weight.W, p.p*p.p*p.outC, m.Head.Proj.Bias.W)
	for b := 0; b < n; b++ {
		p.unpatchify(bb.headTok.Data()[b*p.t*p.p*p.p*p.outC:], bb.outs[b].Data())
	}
	return bb.outs[:n]
}

// extractPatches tokenizes one channel image [H, W] into [T, P²] rows
// at dst (nn.PatchEmbed.extractPatches's exact layout).
func (p *Plan) extractPatches(img, dst []float32) {
	ps := p.p
	rows, cols := p.h/ps, p.w/ps
	for pr := 0; pr < rows; pr++ {
		for pc := 0; pc < cols; pc++ {
			base := (pr*cols + pc) * ps * ps
			for i := 0; i < ps; i++ {
				src := (pr*ps+i)*p.w + pc*ps
				copy(dst[base+i*ps:base+(i+1)*ps], img[src:src+ps])
			}
		}
	}
}

// unpatchify scatters [T, P²·OutC] token outputs into [OutC, H, W]
// (nn.PredictionHead.unpatchify's exact layout).
func (p *Plan) unpatchify(tok, out []float32) {
	ps := p.p
	cols := p.w / ps
	hw := p.h * p.w
	pp := ps * ps
	for t := 0; t < p.t; t++ {
		pr, pc := t/cols, t%cols
		rowBase := t * pp * p.outC
		for c := 0; c < p.outC; c++ {
			for i := 0; i < ps; i++ {
				dst := c*hw + (pr*ps+i)*p.w + pc*ps
				src := rowBase + c*pp + i*ps
				copy(out[dst:dst+ps], tok[src:src+ps])
			}
		}
	}
}

// aggregate is nn.VariableAggregation.Forward fused over n·T token
// positions, writing the aggregated stream into bb.x. The scalar loop
// structure (and therefore the float op order) matches the module.
func (p *Plan) aggregate(bb *batchBufs, n int) {
	agg := p.Model.Agg
	c, tTot, d := p.c, n*p.t, p.d
	ed := bb.e.Data()
	ve := agg.VarEmbed.W.Data()
	// e[c,t,:] = emb[c,t,:] + varEmbed[c,:]; emb was written into e by
	// the patch stage, so the add runs in place.
	for ci := 0; ci < c; ci++ {
		vb := ci * d
		for ti := 0; ti < tTot; ti++ {
			base := (ci*tTot + ti) * d
			for k := 0; k < d; k++ {
				ed[base+k] += ve[vb+k]
			}
		}
	}
	p.aggK.matmul(bb.kMat, bb.e, agg.WK.Weight.W, d, nil)
	p.aggV.matmul(bb.vMat, bb.e, agg.WV.Weight.W, d, nil)

	scale := float32(1 / math.Sqrt(float64(d)))
	q := agg.Query.W.Data()
	kd := bb.kMat.Data()
	vd := bb.vMat.Data()
	od := bb.x.Data()
	for i := range od[:tTot*d] {
		od[i] = 0
	}
	for ti := 0; ti < tTot; ti++ {
		for ci := 0; ci < c; ci++ {
			base := (ci*tTot + ti) * d
			var s float32
			for k := 0; k < d; k++ {
				s += kd[base+k] * q[k]
			}
			p.scoresRow[ci] = s * scale
		}
		softmaxRowInto(p.scoresRow, p.alphaRow)
		ob := od[ti*d : (ti+1)*d]
		for ci := 0; ci < c; ci++ {
			a := p.alphaRow[ci]
			vb := vd[(ci*tTot+ti)*d : (ci*tTot+ti+1)*d]
			for k := 0; k < d; k++ {
				ob[k] += a * vb[k]
			}
		}
	}
}

// softmaxRowInto mirrors the aggregation module's private softmax
// (float64 accumulation, max-subtracted) exactly.
func softmaxRowInto(in, out []float32) {
	maxv := in[0]
	for _, v := range in[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for i, v := range in {
		e := math.Exp(float64(v - maxv))
		out[i] = float32(e)
		sum += e
	}
	inv := float32(1 / sum)
	for i := range out {
		out[i] *= inv
	}
}

// leadInto adds the projected lead-time embedding to one sample's T
// token rows (nn.LeadTimeEmbedding.ForwardWithLead's math, with the
// sinusoidal features and projection landing in plan-owned buffers).
func (p *Plan) leadInto(rows []float32, leadHours float64) {
	d := p.d
	fd := p.leadFeat.Data()
	for i := 0; i < d/2; i++ {
		freq := math.Pow(10000, -2*float64(i)/float64(d))
		fd[2*i] = float32(math.Sin(leadHours * freq))
		fd[2*i+1] = float32(math.Cos(leadHours * freq))
	}
	proj := p.Model.Lead.Proj
	p.leadW.matmul(p.leadOff, p.leadFeat, proj.Weight.W, d, proj.Bias.W)
	off := p.leadOff.Data()
	for t := 0; t < p.t; t++ {
		base := t * d
		for k := 0; k < d; k++ {
			rows[base+k] += off[k]
		}
	}
}

// lnInto is the inference-mode layer norm: it writes only the output
// (no cached x̂/rstd for a backward that never comes), with the exact
// float32 rounding sequence of nn.LayerNorm.Forward.
func lnInto(dst, x *tensor.Tensor, ln *nn.LayerNorm) {
	dim := ln.Dim
	rows := x.Len() / dim
	g, b := ln.Gamma.W.Data(), ln.Beta.W.Data()
	xd, od := x.Data(), dst.Data()
	for r := 0; r < rows; r++ {
		xr := xd[r*dim : (r+1)*dim]
		var mean float64
		for _, v := range xr {
			mean += float64(v)
		}
		mean /= float64(dim)
		var variance float64
		for _, v := range xr {
			d := float64(v) - mean
			variance += d * d
		}
		variance /= float64(dim)
		rstd := 1 / math.Sqrt(variance+ln.Eps)
		or := od[r*dim : (r+1)*dim]
		for c, v := range xr {
			h := float32((float64(v) - mean) * rstd)
			or[c] = h*g[c] + b[c]
		}
	}
}
