package infer

import (
	"fmt"
	"runtime"
	"sync"

	"orbit/internal/tensor"
	"orbit/internal/vit"
)

// Config describes how an Engine turns model outputs into forecast
// states.
type Config struct {
	// ResidualChans mirrors train.Config.ResidualChans: when non-nil,
	// model output i is a tendency added to input channel
	// ResidualChans[i] (the GraphCast/FourCastNet trick), and it also
	// defines which state channels the outputs update during an
	// autoregressive rollout.
	ResidualChans []int
	// OutputChans maps model output i to input channel OutputChans[i]
	// for absolute-state models whose OutChannels differ from Channels.
	// nil with a full-state model means the identity. Ignored when
	// ResidualChans is set (which already carries the mapping).
	OutputChans []int
	// MaxBatch bounds the fused per-worker forward batch (default 8).
	MaxBatch int
	// Workers bounds concurrent forward workers (default GOMAXPROCS).
	Workers int
	// TP runs the transformer trunk tensor-parallel over a simulated
	// cluster group of this size (0 or 1 = single device). See
	// NewTPForecaster for the serving rationale.
	TP int
	// Quant supplies block-quantized weight containers keyed by
	// parameter name (as LoadQuantizedModel returns them). Worker plans
	// route those matmuls through the dequant-fused kernel and never
	// materialize a per-worker f32 copy of the quantized matrices; all
	// workers share the read-only containers. Incompatible with TP,
	// which shards float32 weights.
	Quant map[string]*tensor.Quantized
}

// Engine executes batched autoregressive rollouts with a forward-only
// model. It is safe for concurrent use: each worker owns a Plan
// (pre-allocated workspaces) and per-slot state buffers.
type Engine struct {
	Model *vit.Model
	Cfg   Config

	outChans []int // model output i updates state channel outChans[i]
	residual bool

	mu   sync.Mutex
	made int
	pool chan *worker
	tp   *TPForecaster
}

// worker is one concurrent rollout lane: a forward plan plus
// engine-owned state and composition buffers for MaxBatch slots.
type worker struct {
	plan   *Plan
	states []*tensor.Tensor // [C, H, W] rollout states
	preds  []*tensor.Tensor // [OutC, H, W] composed predictions
	leads  []float64
}

// NewEngine plans an inference engine over a (typically loaded) model.
func NewEngine(m *vit.Model, cfg Config) (*Engine, error) {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 8
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	mc := m.Config
	e := &Engine{Model: m, Cfg: cfg}
	switch {
	case cfg.ResidualChans != nil:
		e.outChans = cfg.ResidualChans
		e.residual = true
	case cfg.OutputChans != nil:
		e.outChans = cfg.OutputChans
	case mc.OutChannels == mc.Channels:
		e.outChans = make([]int, mc.Channels)
		for i := range e.outChans {
			e.outChans[i] = i
		}
	default:
		return nil, fmt.Errorf("infer: model predicts %d of %d channels; Config must map them (OutputChans or ResidualChans)", mc.OutChannels, mc.Channels)
	}
	if len(e.outChans) != mc.OutChannels {
		return nil, fmt.Errorf("infer: %d channel mappings for %d model outputs", len(e.outChans), mc.OutChannels)
	}
	for _, c := range e.outChans {
		if c < 0 || c >= mc.Channels {
			return nil, fmt.Errorf("infer: mapped channel %d outside [0,%d)", c, mc.Channels)
		}
	}
	if cfg.TP > 1 {
		if cfg.Quant != nil {
			return nil, fmt.Errorf("infer: quantized serving is single-device; the TP trunk shards float32 weights")
		}
		tp, err := NewTPForecaster(m, cfg.TP)
		if err != nil {
			return nil, err
		}
		e.tp = tp
		// The TP group is one shared simulated cluster; forwards are
		// serialized through it.
		e.Cfg.Workers = 1
		cfg.Workers = 1
	}
	e.pool = make(chan *worker, cfg.Workers)
	return e, nil
}

// acquire returns a worker, lazily building up to Cfg.Workers.
func (e *Engine) acquire() *worker {
	select {
	case w := <-e.pool:
		return w
	default:
	}
	e.mu.Lock()
	if e.made < e.Cfg.Workers {
		e.made++
		e.mu.Unlock()
		mc := e.Model.Config
		w := &worker{}
		if e.tp == nil {
			// TP engines never touch the single-device plan; skipping
			// it matters most exactly when TP is in play (models whose
			// workspaces don't fit one device).
			w.plan = NewPlanQ(e.Model, e.Cfg.MaxBatch, e.Cfg.Quant)
		}
		for i := 0; i < e.Cfg.MaxBatch; i++ {
			w.states = append(w.states, tensor.New(mc.Channels, mc.Height, mc.Width))
			w.preds = append(w.preds, tensor.New(mc.OutChannels, mc.Height, mc.Width))
			w.leads = append(w.leads, 0)
		}
		return w
	}
	e.mu.Unlock()
	return <-e.pool
}

func (e *Engine) release(w *worker) { e.pool <- w }

// Warmup runs one full-batch forward per worker so first requests do
// not pay plan-priming costs (packing, per-size header builds) and the
// steady-state rollout step allocates nothing.
func (e *Engine) Warmup() {
	ws := make([]*worker, e.Cfg.Workers)
	for i := range ws {
		ws[i] = e.acquire()
	}
	for _, w := range ws {
		for b := 1; b <= e.Cfg.MaxBatch; b *= 2 {
			e.forward(w, w.states[:b], w.leads[:b])
		}
		e.forward(w, w.states[:e.Cfg.MaxBatch], w.leads[:e.Cfg.MaxBatch])
		e.release(w)
	}
}

// forward runs one batched forward through the plan or, for TP
// engines, sequentially through the tensor-parallel trunk.
func (e *Engine) forward(w *worker, states []*tensor.Tensor, leads []float64) []*tensor.Tensor {
	if e.tp == nil {
		return w.plan.Forward(states, leads)
	}
	outs := make([]*tensor.Tensor, len(states))
	for i, s := range states {
		outs[i] = e.tp.Forward(s, leads[i])
		if len(states) > 1 {
			// The TP head reuses its output buffer per call; batches
			// need each sample's fields to survive the loop.
			outs[i] = outs[i].Clone()
		}
	}
	return outs
}

// StepFunc receives each rollout step's composed prediction
// [OutC, H, W] for one sample. The tensor is engine-owned and valid
// only during the call; copy it to retain it. Under batched rollouts
// it is invoked concurrently for different samples.
type StepFunc func(sample, step int, pred *tensor.Tensor)

// Rollout runs one autoregressive rollout: the initial condition is
// advanced `steps` times, each step predicting leadHours ahead.
func (e *Engine) Rollout(ic *tensor.Tensor, steps int, leadHours float64, fn StepFunc) {
	e.RolloutBatch([]*tensor.Tensor{ic}, steps, []float64{leadHours}, fn)
}

// RolloutBatch rolls out a batch of initial conditions. Samples are
// fused into per-worker forward batches of up to Cfg.MaxBatch and the
// chunks run concurrently on up to Cfg.Workers workers; each sample's
// trajectory is bit-identical to a single-sample rollout.
func (e *Engine) RolloutBatch(ics []*tensor.Tensor, steps int, leads []float64, fn StepFunc) {
	if len(ics) != len(leads) {
		panic(fmt.Sprintf("infer: %d initial conditions, %d leads", len(ics), len(leads)))
	}
	var wg sync.WaitGroup
	for lo := 0; lo < len(ics); lo += e.Cfg.MaxBatch {
		hi := min(lo+e.Cfg.MaxBatch, len(ics))
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			w := e.acquire()
			defer e.release(w)
			e.rolloutChunk(w, ics[lo:hi], steps, leads[lo:hi], lo, fn)
		}(lo, hi)
	}
	wg.Wait()
}

// rolloutChunk advances one worker's fused sub-batch through all
// steps. The steady-state loop performs no heap allocations: states,
// predictions, and every forward intermediate live in worker-owned
// buffers.
func (e *Engine) rolloutChunk(w *worker, ics []*tensor.Tensor, steps int, leads []float64, base int, fn StepFunc) {
	n := len(ics)
	for b, ic := range ics {
		w.states[b].CopyFrom(ic)
		w.leads[b] = leads[b]
	}
	hw := e.Model.Config.Height * e.Model.Config.Width
	for s := 0; s < steps; s++ {
		outs := e.forward(w, w.states[:n], w.leads[:n])
		for b := 0; b < n; b++ {
			od, pd, sd := outs[b].Data(), w.preds[b].Data(), w.states[b].Data()
			for i, c := range e.outChans {
				out := od[i*hw : (i+1)*hw]
				pred := pd[i*hw : (i+1)*hw]
				if e.residual {
					// The model predicts the tendency of channel c:
					// prediction = input[c] + output (the exact float
					// order of train.Forecaster.Predict).
					state := sd[c*hw : (c+1)*hw]
					for j := range out {
						pred[j] = out[j] + state[j]
					}
				} else {
					copy(pred, out)
				}
			}
			// Predictions become the next state's mapped channels;
			// unpredicted channels persist (the static variables).
			for i, c := range e.outChans {
				copy(sd[c*hw:(c+1)*hw], pd[i*hw:(i+1)*hw])
			}
			if fn != nil {
				fn(base+b, s, w.preds[b])
			}
		}
	}
}
