package infer

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"orbit/internal/ckpt"
	"orbit/internal/tensor"
	"orbit/internal/vit"
)

// update regenerates testdata/golden: go test ./internal/infer -run
// TestGoldenRollout -update. Do this only when a numerics change is
// intentional, and say so in the PR.
var update = flag.Bool("update", false, "regenerate golden checkpoint and rollout values")

// goldenTolerance pins forward-pass numerics: any kernel or refactor
// PR that moves a rollout value by more than this fails loudly instead
// of silently changing model output.
const goldenTolerance = 1e-6

const (
	goldenModelSeed = 20260726
	goldenICSeed    = 777
	goldenSteps     = 3
	goldenLead      = 24.0
)

var goldenResidualChans = []int{1, 3, 4}

type goldenFile struct {
	Description   string      `json:"description"`
	ModelSeed     uint64      `json:"model_seed"`
	ICSeed        uint64      `json:"ic_seed"`
	LeadHours     float64     `json:"lead_hours"`
	ResidualChans []int       `json:"residual_chans"`
	Config        vit.Config  `json:"config"`
	Steps         [][]float32 `json:"steps"` // per rollout step, the flat [OutC, H, W] prediction
}

func goldenConfig() vit.Config {
	cfg := vit.Tiny(6, 8, 16)
	cfg.OutChannels = len(goldenResidualChans)
	return cfg
}

func goldenIC() *tensor.Tensor {
	rng := tensor.NewRNG(goldenICSeed)
	return tensor.Randn(rng, 1, 6, 8, 16)
}

func goldenRollout(t *testing.T, m *vit.Model) [][]float32 {
	t.Helper()
	eng, err := NewEngine(m, Config{ResidualChans: goldenResidualChans})
	if err != nil {
		t.Fatal(err)
	}
	steps := make([][]float32, goldenSteps)
	eng.Rollout(goldenIC(), goldenSteps, goldenLead, func(_, s int, pred *tensor.Tensor) {
		steps[s] = append([]float32(nil), pred.Data()...)
	})
	return steps
}

// TestGoldenRollout loads the frozen checkpoint in testdata/golden and
// pins the batched autoregressive rollout's every output value to the
// checked-in expectations at 1e-6 — the conformance gate between the
// checkpoint format, the model forward, and the rollout wiring.
func TestGoldenRollout(t *testing.T) {
	ckptPath := filepath.Join("testdata", "golden", "tiny.ckpt")
	jsonPath := filepath.Join("testdata", "golden", "rollout.json")

	if *update {
		m, err := vit.New(goldenConfig(), goldenModelSeed)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(ckptPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := ckpt.Save(ckptPath, m, false); err != nil {
			t.Fatal(err)
		}
		g := goldenFile{
			Description:   "frozen tiny-model rollout: residual-channel autoregressive predictions, 1e-6 conformance",
			ModelSeed:     goldenModelSeed,
			ICSeed:        goldenICSeed,
			LeadHours:     goldenLead,
			ResidualChans: goldenResidualChans,
			Config:        goldenConfig(),
			Steps:         goldenRollout(t, m),
		}
		b, err := json.MarshalIndent(&g, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(jsonPath, b, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s and %s", ckptPath, jsonPath)
	}

	b, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("missing golden values (run with -update to generate): %v", err)
	}
	var g goldenFile
	if err := json.Unmarshal(b, &g); err != nil {
		t.Fatal(err)
	}
	if g.Config != goldenConfig() || g.ModelSeed != goldenModelSeed {
		t.Fatalf("golden metadata drifted from the test constants: %+v", g)
	}

	m, err := LoadModel(ckptPath)
	if err != nil {
		t.Fatalf("loading frozen checkpoint: %v", err)
	}
	got := goldenRollout(t, m)
	if len(got) != len(g.Steps) {
		t.Fatalf("rollout produced %d steps, golden has %d", len(got), len(g.Steps))
	}
	for s := range got {
		if len(got[s]) != len(g.Steps[s]) {
			t.Fatalf("step %d: %d values, golden has %d", s, len(got[s]), len(g.Steps[s]))
		}
		worst, worstIdx := 0.0, -1
		for i := range got[s] {
			d := math.Abs(float64(got[s][i]) - float64(g.Steps[s][i]))
			if d > worst {
				worst, worstIdx = d, i
			}
		}
		if worst > goldenTolerance {
			t.Errorf("step %d: value %d drifted by %g (> %g): got %v, golden %v — model numerics changed; if intentional, regenerate with -update and call it out in the PR",
				s, worstIdx, worst, goldenTolerance, got[s][worstIdx], g.Steps[s][worstIdx])
		}
	}
}

// TestGoldenCheckpointStable additionally pins the frozen checkpoint
// bytes themselves: loading them must reproduce the same weights the
// generator seed produces, so a ckpt-format change cannot silently
// reinterpret old files.
func TestGoldenCheckpointStable(t *testing.T) {
	ckptPath := filepath.Join("testdata", "golden", "tiny.ckpt")
	m, err := LoadModel(ckptPath)
	if err != nil {
		t.Fatalf("loading frozen checkpoint (run TestGoldenRollout -update first): %v", err)
	}
	ref, err := vit.New(goldenConfig(), goldenModelSeed)
	if err != nil {
		t.Fatal(err)
	}
	mp, rp := m.Params(), ref.Params()
	if len(mp) != len(rp) {
		t.Fatalf("%d params loaded, %d expected", len(mp), len(rp))
	}
	for i := range mp {
		if d := tensor.MaxDiff(mp[i].W, rp[i].W); d != 0 {
			t.Fatalf("param %s differs from its seed by %g — the frozen file no longer decodes bit-exactly", mp[i].Name, d)
		}
	}
}
