package infer

import (
	"testing"

	"orbit/internal/climate"
	"orbit/internal/metrics"
	"orbit/internal/tensor"
	"orbit/internal/train"
	"orbit/internal/vit"
)

// serveFixture builds the serving-benchmark workload: the
// examples/forecast model geometry (8 channels, 16×32 grid, 4-variable
// residual output) over an ERA5-like dataset.
func serveFixture(tb testing.TB, maxBatch int) (*Engine, *ScoreCache, train.Forecaster) {
	tb.Helper()
	vars := climate.RegistrySmall()
	const height, width = 16, 32
	chans := []int{4, 7, 1, 2} // z500, t850, t2m, u10
	w := climate.NewWorld(vars, height, width, climate.ERA5Source())
	stats := w.EstimateStats(8)
	ds := climate.NewDataset(w, stats, 0, 256, 4)
	ds.OutputChans = chans

	cfg := vit.Tiny(len(vars), height, width)
	cfg.OutChannels = len(chans)
	m, err := vit.New(cfg, 12)
	if err != nil {
		tb.Fatal(err)
	}
	eng, err := NewEngine(m, Config{ResidualChans: chans, MaxBatch: maxBatch})
	if err != nil {
		tb.Fatal(err)
	}
	eng.Warmup()
	return eng, NewScoreCache(ds, chans), train.Forecaster{Model: m, ResidualChans: chans}
}

// TestRolloutStepAllocs pins the tentpole zero-allocation claim: after
// warmup, a steady-state batched rollout step through the planned
// forward performs no heap allocations.
func TestRolloutStepAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; see race_off_test.go")
	}
	eng, _, _ := serveFixture(t, 4)
	sc := eng.Model.Config
	var ics []*tensor.Tensor
	leads := []float64{24, 24, 24, 24}
	rng := tensor.NewRNG(3)
	for b := 0; b < 4; b++ {
		ics = append(ics, tensor.Randn(rng, 1, sc.Channels, sc.Height, sc.Width))
	}
	w := eng.acquire()
	defer eng.release(w)
	// Warm this worker at the exact batch size.
	eng.rolloutChunk(w, ics, 2, leads, 0, nil)
	allocs := testing.AllocsPerRun(10, func() {
		eng.rolloutChunk(w, ics, 3, leads, 0, nil)
	})
	if allocs > 0 {
		t.Fatalf("steady-state rollout step allocates %.1f objects/run, want 0", allocs)
	}
}

// sequentialForecast is the pre-inference-subsystem serving path,
// verbatim: one sample at a time through train.Forecaster.Predict,
// regenerating the verifying truth and climatology per request with no
// cross-request caching (exactly what examples/forecast and EvalACC
// did before this subsystem existed).
func sequentialForecast(f train.Forecaster, ds *climate.Dataset, chans []int, starts []int, steps int) {
	hw := ds.World.Height * ds.World.Width
	for _, start := range starts {
		s := ds.At(start)
		state := s.Input.Clone()
		for k := 0; k < steps; k++ {
			pred := f.Predict(state, s.LeadHours)
			for i, c := range chans {
				copy(state.Data()[c*hw:(c+1)*hw], pred.Data()[i*hw:(i+1)*hw])
			}
			idx := start + (k+1)*ds.LeadSteps
			truth := climate.SelectChannels(ds.At(idx).Input, chans)
			clim := ds.NormalizedClimatologyAt(idx-ds.LeadSteps, chans)
			metrics.WeightedRMSE(pred, truth)
			metrics.WeightedACC(pred, truth, clim)
		}
	}
}

// BenchmarkServeRollout measures served (scored) rollout throughput at
// growing batch widths. One iteration = `batch` concurrent requests,
// each a 4-step scored rollout; the recorded per-op time therefore
// covers batch×4 forecast steps. scripts/bench_pr4.sh converts this to
// sample-steps/second for BENCH_PR4.json.
func BenchmarkServeRollout(b *testing.B) {
	for _, batch := range []int{1, 8, 32} {
		b.Run(byteSize(batch), func(b *testing.B) {
			eng, sc, _ := serveFixture(b, min(batch, 8))
			starts := make([]int, batch)
			for i := range starts {
				starts[i] = (i * 5) % 64
			}
			eng.ScoredRolloutBatch(sc, starts, 4) // prime caches + plans
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.ScoredRolloutBatch(sc, starts, 4)
			}
			b.ReportMetric(float64(batch*4)*float64(b.N)/b.Elapsed().Seconds(), "sample-steps/sec")
		})
	}
}

// BenchmarkSequentialForecast is the baseline the serving subsystem
// replaces: per-sample, uncached, allocating inference through the
// Trainer-era Forecaster path. Iterations cover the same 8 requests ×
// 4 steps as BenchmarkServeRollout/batch=8.
func BenchmarkSequentialForecast(b *testing.B) {
	_, sc, f := serveFixture(b, 1)
	starts := []int{0, 5, 10, 15, 20, 25, 30, 35}
	chans := sc.Chans
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sequentialForecast(f, sc.DS, chans, starts, 4)
	}
	b.ReportMetric(float64(len(starts)*4)*float64(b.N)/b.Elapsed().Seconds(), "sample-steps/sec")
}

// BenchmarkRolloutStepUnscored isolates the forward engine (no
// scoring, no truth generation): the number to watch for kernel
// regressions, with its allocation counter expected at zero.
func BenchmarkRolloutStepUnscored(b *testing.B) {
	eng, _, _ := serveFixture(b, 8)
	sc := eng.Model.Config
	rng := tensor.NewRNG(3)
	var ics []*tensor.Tensor
	leads := make([]float64, 8)
	for i := range leads {
		ics = append(ics, tensor.Randn(rng, 1, sc.Channels, sc.Height, sc.Width))
		leads[i] = 24
	}
	w := eng.acquire()
	defer eng.release(w)
	eng.rolloutChunk(w, ics, 1, leads, 0, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.rolloutChunk(w, ics, 1, leads, 0, nil)
	}
	b.ReportMetric(float64(8*b.N)/b.Elapsed().Seconds(), "sample-steps/sec")
}

func byteSize(n int) string {
	switch n {
	case 1:
		return "batch=1"
	case 8:
		return "batch=8"
	default:
		return "batch=32"
	}
}
