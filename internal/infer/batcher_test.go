package infer

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"orbit/internal/climate"
	"orbit/internal/vit"
)

// batcherFixture wires a tiny engine + score cache for serving tests.
func batcherFixture(t testing.TB, maxBatch int, maxWait time.Duration) (*Batcher, *Engine) {
	t.Helper()
	vars := climate.RegistrySmall()
	w := climate.NewWorld(vars, eqHeight, eqWidth, climate.ERA5Source())
	stats := w.EstimateStats(8)
	ds := climate.NewDataset(w, stats, 0, 128, 2)
	m, err := vit.New(vit.Tiny(len(vars), eqHeight, eqWidth), 21)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(m, Config{MaxBatch: maxBatch})
	if err != nil {
		t.Fatal(err)
	}
	return NewBatcher(eng, NewScoreCache(ds, nil), maxBatch, maxWait), eng
}

// TestBatcherCoalesces proves dynamic batching: requests arriving
// together share one fused batch.
func TestBatcherCoalesces(t *testing.T) {
	const n = 8
	b, _ := batcherFixture(t, n, 500*time.Millisecond)
	defer b.Close()

	var wg sync.WaitGroup
	resps := make([]*Response, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := b.Do(Request{Start: i, Steps: 2})
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			resps[i] = r
		}(i)
	}
	wg.Wait()
	coalesced := 0
	for i, r := range resps {
		if r == nil {
			t.Fatalf("request %d got no response", i)
		}
		if len(r.Scores) != 2 {
			t.Fatalf("request %d: %d scored steps", i, len(r.Scores))
		}
		if r.Coalesced > coalesced {
			coalesced = r.Coalesced
		}
	}
	if coalesced < 2 {
		t.Fatalf("no coalescing observed (max batch reported %d)", coalesced)
	}
}

// TestBatcherMaxWait proves a lone request is not held hostage by an
// unfilled batch: it is served once MaxWait elapses.
func TestBatcherMaxWait(t *testing.T) {
	const wait = 50 * time.Millisecond
	b, _ := batcherFixture(t, 8, wait)
	defer b.Close()

	start := time.Now()
	r, err := b.Do(Request{Start: 0, Steps: 1})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if r.Coalesced != 1 {
		t.Fatalf("lone request reported batch of %d", r.Coalesced)
	}
	if elapsed < wait-5*time.Millisecond {
		t.Fatalf("request served after %v, before the %v max-wait window", elapsed, wait)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("request took %v — max-wait not honored", elapsed)
	}
}

// TestBatcherDrainOnClose proves Close serves every in-flight request
// before returning, and rejects requests afterwards.
func TestBatcherDrainOnClose(t *testing.T) {
	b, _ := batcherFixture(t, 16, 10*time.Second) // wait longer than the test: only Close can flush
	var wg sync.WaitGroup
	var served atomic.Int32
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := b.Do(Request{Start: i, Steps: 1})
			if err != nil {
				t.Errorf("drained request %d: %v", i, err)
				return
			}
			if len(r.Scores) != 1 {
				t.Errorf("drained request %d: %d scores", i, len(r.Scores))
			}
			served.Add(1)
		}(i)
	}
	// Give the three requests time to enqueue, then shut down.
	for deadline := time.Now().Add(5 * time.Second); ; {
		b.mu.Lock()
		n := len(b.pending)
		b.mu.Unlock()
		if n == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("requests never enqueued")
		}
		time.Sleep(time.Millisecond)
	}
	b.Close()
	wg.Wait()
	if served.Load() != 3 {
		t.Fatalf("%d of 3 in-flight requests served across Close", served.Load())
	}
	if _, err := b.Do(Request{Start: 0, Steps: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close Do returned %v, want ErrClosed", err)
	}
	b.Close() // idempotent
}

// TestBatcherConcurrentStress is the -race workout: many goroutines,
// mixed horizons, timer-and-size flushes interleaving, then a close
// racing the tail of the traffic.
func TestBatcherConcurrentStress(t *testing.T) {
	b, _ := batcherFixture(t, 4, time.Millisecond)
	var wg sync.WaitGroup
	var ok, closed atomic.Int32
	for g := 0; g < 24; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				steps := 1 + (g+i)%3
				r, err := b.Do(Request{Start: (g*7 + i) % 64, Steps: steps})
				switch {
				case errors.Is(err, ErrClosed):
					closed.Add(1)
					return
				case err != nil:
					t.Errorf("goroutine %d req %d: %v", g, i, err)
					return
				case len(r.Scores) != steps:
					t.Errorf("goroutine %d req %d: %d scores for %d steps", g, i, len(r.Scores), steps)
					return
				}
				ok.Add(1)
			}
		}(g)
	}
	wg.Wait()
	b.Close()
	if ok.Load() == 0 {
		t.Fatal("no requests served")
	}
	t.Logf("served %d requests (%d rejected by close)", ok.Load(), closed.Load())
}

// TestBatcherMixedHorizons rides a short request along a longer one in
// the same batch.
func TestBatcherMixedHorizons(t *testing.T) {
	b, _ := batcherFixture(t, 2, 500*time.Millisecond)
	defer b.Close()
	var wg sync.WaitGroup
	var short, long *Response
	wg.Add(2)
	go func() { defer wg.Done(); short, _ = b.Do(Request{Start: 0, Steps: 1}) }()
	go func() { defer wg.Done(); long, _ = b.Do(Request{Start: 8, Steps: 4}) }()
	wg.Wait()
	if short == nil || long == nil {
		t.Fatal("requests not served")
	}
	if len(short.Scores) != 1 || len(long.Scores) != 4 {
		t.Fatalf("horizons not respected: %d / %d", len(short.Scores), len(long.Scores))
	}
	for s, sc := range long.Scores {
		if sc.LeadHours == 0 {
			t.Fatalf("long request step %d unscored", s)
		}
	}
}
