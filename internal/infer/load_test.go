package infer

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"orbit/internal/ckpt"
	"orbit/internal/cluster"
	"orbit/internal/comm"
	"orbit/internal/nn"
	"orbit/internal/parallel"
	"orbit/internal/tensor"
	"orbit/internal/vit"
)

// saveShardedStack writes ref as a sharded checkpoint under the given
// TP×FSDP layout, exactly as elastic training's save path does: each
// (T,F) position stores its FSDP chunk of its TP row's flattened
// parameters.
func saveShardedStack(t *testing.T, dir string, ref []*nn.TransformerBlock, tp, fsdp int, spec *ckpt.BlockSpec) {
	t.Helper()
	machine := cluster.NewMachine(cluster.Frontier(), 1, tp)
	group := comm.NewGroup(machine.Devices[:tp])
	man := &ckpt.Manifest{
		Layout: ckpt.ShardLayout{TP: tp, FSDP: fsdp, DDP: 1},
		Block:  spec,
		Step:   1,
		RNG:    tensor.NewRNG(1).State(),
	}
	var shards []*ckpt.RankShard
	for tr := 0; tr < tp; tr++ {
		var lens []int
		rowShards := make([]*ckpt.RankShard, fsdp)
		for f := range rowShards {
			rowShards[f] = &ckpt.RankShard{T: tr, F: f}
		}
		for _, blk := range ref {
			tpb := parallel.NewTPBlock(tr, group, blk)
			params := tpb.Params()
			lens = append(lens, parallel.NumelPadded(params, 1))
			flat := parallel.FlattenParams(params, fsdp)
			chunkLen := len(flat) / fsdp
			for f := 0; f < fsdp; f++ {
				chunk := append([]float32(nil), flat[f*chunkLen:(f+1)*chunkLen]...)
				rowShards[f].Blocks = append(rowShards[f].Blocks, ckpt.BlockShard{
					W: chunk,
					M: make([]float32, chunkLen),
					V: make([]float32, chunkLen),
				})
			}
		}
		if tr == 0 {
			man.FlatLens = lens
		}
		if tp > 1 {
			if man.FlatLensTP == nil {
				man.FlatLensTP = make([][]int, tp)
			}
			man.FlatLensTP[tr] = lens
		}
		shards = append(shards, rowShards...)
	}
	if err := ckpt.SaveSharded(dir, man, shards); err != nil {
		t.Fatal(err)
	}
}

func refStack(t *testing.T, dim, heads, layers int) []*nn.TransformerBlock {
	t.Helper()
	rng := tensor.NewRNG(31)
	blocks := make([]*nn.TransformerBlock, layers)
	for i := range blocks {
		blocks[i] = nn.NewTransformerBlock(fmt.Sprintf("ref%d", i), dim, heads, true, rng)
	}
	return blocks
}

func mustSameParams(t *testing.T, what string, got, want []*nn.Param) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d params vs %d", what, len(got), len(want))
	}
	for i := range got {
		if d := tensor.MaxDiff(got[i].W, want[i].W); d != 0 {
			t.Fatalf("%s: param %d (%s) differs by %g", what, i, want[i].Name, d)
		}
	}
}

// TestLoadBlocksSharded proves the sharded-manifest load path: for
// TP=1 and TP=2 layouts (the TP=2 rows have unequal flat lengths —
// output biases live only on rank 0 — which is exactly the case the
// per-T manifest lengths exist for), LoadBlocks reshards to FSDP=1,
// merges the Megatron shards, and reproduces the reference stack
// bit-exactly.
func TestLoadBlocksSharded(t *testing.T) {
	const dim, heads, layers = 8, 2, 2
	ref := refStack(t, dim, heads, layers)
	spec := &ckpt.BlockSpec{Dim: dim, Heads: heads, QKNorm: true}
	for _, tc := range []struct{ tp, fsdp int }{{1, 1}, {1, 4}, {2, 2}, {2, 1}} {
		t.Run(fmt.Sprintf("tp%d_fsdp%d", tc.tp, tc.fsdp), func(t *testing.T) {
			dir := t.TempDir()
			saveShardedStack(t, dir, ref, tc.tp, tc.fsdp, spec)
			got, man, err := LoadBlocks(dir)
			if err != nil {
				t.Fatal(err)
			}
			if man.Layout.TP != tc.tp {
				t.Fatalf("manifest TP %d", man.Layout.TP)
			}
			if len(got) != layers {
				t.Fatalf("%d blocks, want %d", len(got), layers)
			}
			for l := range got {
				mustSameParams(t, fmt.Sprintf("block %d", l), got[l].Params(), ref[l].Params())
			}
			// The merged stack must also compute what the reference
			// computes.
			rng := tensor.NewRNG(77)
			x := tensor.Randn(rng, 0.5, 6, dim)
			want := x
			for _, b := range ref {
				want = b.Forward(want)
			}
			h := x
			for _, b := range got {
				h = b.Forward(h)
			}
			if d := tensor.MaxDiff(h, want); d != 0 {
				t.Fatalf("merged stack forward differs by %g", d)
			}
		})
	}
}

// TestLoadBlocksErrors covers the guard rails of the sharded loader.
func TestLoadBlocksErrors(t *testing.T) {
	if _, _, err := LoadBlocks(t.TempDir()); err == nil {
		t.Fatal("empty dir must fail")
	}
	// A manifest without block geometry is loadable as shards but not
	// as a serial stack.
	ref := refStack(t, 8, 2, 1)
	dir := t.TempDir()
	saveShardedStack(t, dir, ref, 1, 1, nil)
	if _, _, err := LoadBlocks(dir); err == nil {
		t.Fatal("manifest without BlockSpec must fail")
	}
	// Geometry whose head count the checkpoint TP cannot divide.
	dir2 := t.TempDir()
	saveShardedStack(t, dir2, refStack(t, 8, 2, 1), 2, 1, &ckpt.BlockSpec{Dim: 8, Heads: 3, QKNorm: true})
	if _, _, err := LoadBlocks(dir2); err == nil {
		t.Fatal("heads not divisible by TP must fail")
	}
}

// TestLoadModelWithTrunk installs a sharded trunk into a full model
// and verifies the blocks carry the checkpoint weights while stem and
// head come from the seed.
func TestLoadModelWithTrunk(t *testing.T) {
	cfg := vit.Tiny(4, 8, 16) // EmbedDim 32, Heads 4, Layers 2
	src, err := vit.New(cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	spec := &ckpt.BlockSpec{Dim: cfg.EmbedDim, Heads: cfg.Heads, QKNorm: cfg.QKNorm}
	saveShardedStack(t, dir, src.Blocks, 2, 2, spec)

	m, man, err := LoadModelWithTrunk(dir, cfg, 1234)
	if err != nil {
		t.Fatal(err)
	}
	if man.Block.Dim != cfg.EmbedDim {
		t.Fatalf("manifest dim %d", man.Block.Dim)
	}
	for l := range m.Blocks {
		mustSameParams(t, fmt.Sprintf("trunk block %d", l), m.Blocks[l].Params(), src.Blocks[l].Params())
	}
	// Mismatched geometry errors.
	bad := cfg
	bad.Layers = 5
	if _, _, err := LoadModelWithTrunk(dir, bad, 1); err == nil {
		t.Fatal("layer-count mismatch must fail")
	}
	bad = cfg
	bad.EmbedDim = 64
	bad.Heads = 4
	if _, _, err := LoadModelWithTrunk(dir, bad, 1); err == nil {
		t.Fatal("dim mismatch must fail")
	}
}

// TestLoadModelKinds proves LoadModel accepts every file checkpoint
// kind and rejects directories.
func TestLoadModelKinds(t *testing.T) {
	cfg := vit.Tiny(2, 8, 8)
	m, err := vit.New(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	p1 := filepath.Join(dir, "weights.ckpt")
	if err := ckpt.Save(p1, m, false); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModel(p1)
	if err != nil {
		t.Fatal(err)
	}
	mustSameParams(t, "weights ckpt", got.Params(), m.Params())

	// A training-state checkpoint loads as a model too (moments are
	// skipped).
	st := &ckpt.TrainState{Model: m}
	for _, p := range m.Params() {
		st.OptM = append(st.OptM, make([]float32, p.W.Len()))
		st.OptV = append(st.OptV, make([]float32, p.W.Len()))
	}
	p2 := filepath.Join(dir, "train.ckpt")
	if err := ckpt.SaveTrainState(p2, st, false); err != nil {
		t.Fatal(err)
	}
	got2, err := LoadModel(p2)
	if err != nil {
		t.Fatal(err)
	}
	mustSameParams(t, "train-state ckpt", got2.Params(), m.Params())

	if _, err := LoadModel(dir); err == nil {
		t.Fatal("plain directory must fail")
	}
	sh := filepath.Join(dir, "sharded")
	if err := os.MkdirAll(sh, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(sh, ckpt.ManifestName), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(sh); err == nil {
		t.Fatal("sharded dir must point the caller at LoadBlocks")
	}
}
