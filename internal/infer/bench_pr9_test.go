package infer

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"orbit/internal/ckpt"
	"orbit/internal/quant"
	"orbit/internal/tensor"
	"orbit/internal/vit"
)

// TestBenchPR9 is the PR 9 quantized-formats measurement, env-gated so
// `go test ./...` stays fast. Run via `make bench-pr9`
// (scripts/bench_pr9.sh), which records the results into
// BENCH_PR9.json.
//
// Three arms, each comparing f32 against int8 and Q4_0:
//
//   - the serving-shaped matmul ([128,256] @ [256,256]) through the
//     packed f32 kernel vs the dequant-fused quantized kernel —
//     GFLOP/s and the weight-stream GB/s each format moves, plus an
//     asserted 0 allocs/op for the fused kernel's steady state;
//   - the frozen golden rollout served end to end from each format
//     (rollouts per second);
//   - checkpoint bytes on disk for the same model in all three
//     formats, with compression ratios.
//
// Arms are interleaved within each round and medians reported, so the
// ratios hold even as the host's absolute speed drifts.
func TestBenchPR9(t *testing.T) {
	out := os.Getenv("ORBIT_BENCH_PR9")
	if out == "" {
		t.Skip("set ORBIT_BENCH_PR9=<output.json> to run the PR 9 measurement")
	}

	const reps = 5

	// ---- Matmul arm: serving token matrix against one block weight.
	const m0, k0, n0 = 128, 256, 256
	const callsPerSample = 8
	rng := tensor.NewRNG(99)
	x := tensor.Randn(rng, 1, m0, k0).Reshape(m0, k0)
	w := tensor.Randn(rng, 1, k0, n0).Reshape(k0, n0)
	dst := tensor.New(m0, n0)
	bt := tensor.PackTransposedInto(make([]float32, k0*n0), w)
	qi8 := tensor.QuantizeTensor(w, tensor.QuantInt8)
	qq4 := tensor.QuantizeTensor(w, tensor.QuantQ4)

	arms := []struct {
		name   string
		wBytes int
		call   func()
	}{
		{"f32", 4 * k0 * n0, func() { tensor.MatMulPackedBInto(dst, x, bt, n0, nil) }},
		{"int8", qi8.Bytes(), func() { tensor.MatMulQuantInto(dst, x, qi8, nil) }},
		{"q4_0", qq4.Bytes(), func() { tensor.MatMulQuantInto(dst, x, qq4, nil) }},
	}
	samples := map[string][]float64{}
	for _, a := range arms {
		a.call() // warm pools and scratch at steady state
	}
	for r := 0; r < reps; r++ {
		for _, a := range arms {
			start := time.Now()
			for i := 0; i < callsPerSample; i++ {
				a.call()
			}
			samples[a.name] = append(samples[a.name], float64(time.Since(start).Nanoseconds())/1e6)
		}
	}
	matmul := map[string]any{}
	flopsPerCall := 2.0 * m0 * k0 * n0
	for _, a := range arms {
		ms := median(samples[a.name])
		sec := ms / 1e3
		matmul[a.name] = map[string]float64{
			"ms_per_8_calls":  round3(ms),
			"gflops":          round3(flopsPerCall * callsPerSample / sec / 1e9),
			"weight_gb_per_s": round3(float64(a.wBytes) * callsPerSample / sec / 1e9),
		}
	}

	// The fused kernel's zero-allocation invariant is part of the
	// report, asserted rather than merely recorded.
	allocs := map[string]float64{}
	for _, a := range arms[1:] {
		got := testing.AllocsPerRun(10, a.call)
		if got != 0 {
			t.Fatalf("%s fused matmul allocates %.1f allocs/op in steady state, want 0", a.name, got)
		}
		allocs[a.name] = got
	}

	// ---- Serving arm: the frozen golden rollout from each format.
	mf, err := LoadModel(filepath.Join("testdata", "golden", "tiny.ckpt"))
	if err != nil {
		t.Fatalf("loading frozen checkpoint: %v", err)
	}
	engines := map[string]*Engine{}
	if engines["f32"], err = NewEngine(mf, Config{ResidualChans: goldenResidualChans}); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for _, kind := range []quant.Kind{quant.Int8, quant.Q4_0} {
		p := filepath.Join(dir, kind.String()+".orbt")
		if err := ckpt.SaveQuantized(p, mf, kind); err != nil {
			t.Fatal(err)
		}
		mq, qs, err := LoadModelQuantized(p)
		if err != nil {
			t.Fatal(err)
		}
		if engines[kind.String()], err = NewEngine(mq, Config{ResidualChans: goldenResidualChans, Quant: qs}); err != nil {
			t.Fatal(err)
		}
	}
	const rolloutsPerSample = 4
	ic := goldenIC()
	discard := func(_, _ int, _ *tensor.Tensor) {}
	names := []string{"f32", "int8", "q4_0"}
	rollSamples := map[string][]float64{}
	for _, name := range names {
		engines[name].Rollout(ic, goldenSteps, goldenLead, discard) // warm plans
	}
	for r := 0; r < reps; r++ {
		for _, name := range names {
			start := time.Now()
			for i := 0; i < rolloutsPerSample; i++ {
				engines[name].Rollout(ic, goldenSteps, goldenLead, discard)
			}
			rollSamples[name] = append(rollSamples[name], float64(time.Since(start).Nanoseconds())/1e6)
		}
	}
	serving := map[string]any{}
	for _, name := range names {
		ms := median(rollSamples[name])
		serving[name] = map[string]float64{
			"ms_per_rollout": round3(ms / rolloutsPerSample),
			"rollouts_per_s": round3(rolloutsPerSample / (ms / 1e3)),
		}
	}

	// ---- Checkpoint arm: the same model in all three formats.
	mc, err := vit.New(vit.Tiny(3, 8, 16), 3)
	if err != nil {
		t.Fatal(err)
	}
	sizeOf := func(name string, save func(string) error) int64 {
		p := filepath.Join(dir, name)
		if err := save(p); err != nil {
			t.Fatal(err)
		}
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		return st.Size()
	}
	f32Bytes := sizeOf("ck_f32.orbt", func(p string) error { return ckpt.Save(p, mc, false) })
	i8Bytes := sizeOf("ck_i8.orbt", func(p string) error { return ckpt.SaveQuantized(p, mc, quant.Int8) })
	q4Bytes := sizeOf("ck_q4.orbt", func(p string) error { return ckpt.SaveQuantized(p, mc, quant.Q4_0) })

	report := map[string]any{
		"bench":     "pr9_block_quantized_inference",
		"date":      time.Now().UTC().Format("2006-01-02"),
		"reps":      reps,
		"benchmark": "f32 vs int8 vs Q4_0: [128,256]@[256,256] matmul (packed f32 kernel vs dequant-fused kernel), frozen golden rollout served end to end, and checkpoint bytes; arms interleaved per round, medians",
		"matmul": map[string]any{
			"shape":                      fmt.Sprintf("[%d,%d] @ [%d,%d]", m0, k0, k0, n0),
			"formats":                    matmul,
			"fused_kernel_allocs_per_op": allocs,
		},
		"serving_rollout": serving,
		"checkpoint_bytes": map[string]any{
			"f32":           f32Bytes,
			"int8":          i8Bytes,
			"q4_0":          q4Bytes,
			"f32_over_int8": round3(float64(f32Bytes) / float64(i8Bytes)),
			"f32_over_q4_0": round3(float64(f32Bytes) / float64(q4Bytes)),
		},
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("benchpr9: wrote %s\n", out)
}

func median(s []float64) float64 {
	c := append([]float64(nil), s...)
	sort.Float64s(c)
	return c[len(c)/2]
}

func round3(v float64) float64 { return math.Round(v*1000) / 1000 }
