package infer

import (
	"fmt"
	"os"

	"orbit/internal/ckpt"
	"orbit/internal/cluster"
	"orbit/internal/comm"
	"orbit/internal/nn"
	"orbit/internal/parallel"
	"orbit/internal/tensor"
	"orbit/internal/vit"
)

// LoadModel loads a full ORBIT model for inference from a checkpoint
// file: version-1 weights-only, version-2 weights-only, or a version-2
// training-state checkpoint (the optimizer sections are skipped — an
// inference engine has no use for Adam moments).
func LoadModel(path string) (*vit.Model, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if st.IsDir() {
		if ckpt.HasManifest(path) {
			return nil, fmt.Errorf("infer: %s is a sharded distributed checkpoint; use LoadBlocks or LoadModelWithTrunk", path)
		}
		return nil, fmt.Errorf("infer: %s is a directory without a checkpoint manifest", path)
	}
	return ckpt.Load(path)
}

// LoadModelQuantized loads a block-quantized (kindQuantWeights)
// checkpoint for inference, returning both the dequantized model and
// the quantized containers keyed by parameter name — pass the map as
// Config.Quant to serve through the dequant-fused kernels without a
// per-worker f32 copy of the matmul weights. Non-quantized checkpoints
// come back as ckpt.ErrNotQuantized, so callers fall back to
// LoadModel (which itself reads quantized files transparently when the
// containers are not wanted).
func LoadModelQuantized(path string) (*vit.Model, map[string]*tensor.Quantized, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, nil, err
	}
	if st.IsDir() {
		return nil, nil, fmt.Errorf("infer: %s is a directory, not a quantized checkpoint", path)
	}
	return ckpt.LoadQuantized(path)
}

// LoadBlocks reconstructs the serial transformer-block stack of a
// sharded distributed checkpoint (the PR 3 format): shards are
// resharded to FSDP=1 through the exact reshard path elastic resume
// uses, each TP row is unflattened into its Megatron column/row
// shards, and the shards merge back into full serial blocks. The
// manifest must carry the block geometry (checkpoints written since
// ckpt.BlockSpec landed do).
func LoadBlocks(dir string) ([]*nn.TransformerBlock, *ckpt.Manifest, error) {
	man, shards, err := ckpt.LoadSharded(dir)
	if err != nil {
		return nil, nil, err
	}
	if man.Block == nil {
		return nil, nil, fmt.Errorf("infer: manifest in %s lacks block geometry (pre-inference checkpoint?)", dir)
	}
	spec := *man.Block
	if spec.Dim <= 0 || spec.Heads <= 0 || spec.Dim%spec.Heads != 0 {
		return nil, nil, fmt.Errorf("infer: implausible block geometry dim=%d heads=%d", spec.Dim, spec.Heads)
	}
	tp := man.Layout.TP
	if spec.Heads%tp != 0 {
		return nil, nil, fmt.Errorf("infer: %d heads not divisible by checkpoint TP=%d", spec.Heads, tp)
	}
	flat, err := ckpt.Reshard(man, shards, 1)
	if err != nil {
		return nil, nil, err
	}

	layers := len(man.FlatLens)
	rng := tensor.NewRNG(1)
	serial := make([]*nn.TransformerBlock, layers)
	for l := range serial {
		serial[l] = nn.NewTransformerBlock(fmt.Sprintf("block%d", l), spec.Dim, spec.Heads, spec.QKNorm, rng)
	}
	if tp == 1 {
		// A TP=1 shard's flat layout is the serial block's own
		// parameter order.
		for l, blk := range serial {
			w := flat[0].Blocks[l].W
			if want := parallel.NumelPadded(blk.Params(), 1); len(w) < want {
				return nil, nil, fmt.Errorf("infer: block %d flat length %d, geometry needs %d", l, len(w), want)
			}
			parallel.UnflattenInto(flat[0].Blocks[l].W, blk.Params())
		}
		return serial, man, nil
	}

	// TP>1: rebuild each rank's TPBlock shard, unflatten the
	// checkpoint row into it, then merge the Megatron shards back into
	// the full serial weights.
	machine := cluster.NewMachine(cluster.Frontier(), 1, tp)
	group := comm.NewGroup(machine.Devices[:tp])
	for l, blk := range serial {
		tpBlocks := make([]*parallel.TPBlock, tp)
		for t := 0; t < tp; t++ {
			tpBlocks[t] = parallel.NewTPBlock(t, group, blk)
			w := flat[t].Blocks[l].W
			if want := parallel.NumelPadded(tpBlocks[t].Params(), 1); len(w) < want {
				return nil, nil, fmt.Errorf("infer: block %d TP row %d flat length %d, geometry needs %d", l, t, len(w), want)
			}
			parallel.UnflattenInto(w, tpBlocks[t].Params())
		}
		mergeTPBlock(blk, tpBlocks)
	}
	return serial, man, nil
}

// LoadModelWithTrunk builds a model from cfg and installs the
// transformer trunk from a sharded distributed checkpoint. The stem
// and head come from the seed initialization — elastic distributed
// training shards only the block stack, so that is all a sharded
// checkpoint carries.
func LoadModelWithTrunk(dir string, cfg vit.Config, seed uint64) (*vit.Model, *ckpt.Manifest, error) {
	blocks, man, err := LoadBlocks(dir)
	if err != nil {
		return nil, nil, err
	}
	if cfg.Layers != len(blocks) {
		return nil, nil, fmt.Errorf("infer: config has %d layers, checkpoint has %d", cfg.Layers, len(blocks))
	}
	if cfg.EmbedDim != man.Block.Dim || cfg.Heads != man.Block.Heads || cfg.QKNorm != man.Block.QKNorm {
		return nil, nil, fmt.Errorf("infer: config geometry (%d dim, %d heads, qknorm=%v) does not match checkpoint (%d, %d, %v)",
			cfg.EmbedDim, cfg.Heads, cfg.QKNorm, man.Block.Dim, man.Block.Heads, man.Block.QKNorm)
	}
	m, err := vit.New(cfg, seed)
	if err != nil {
		return nil, nil, err
	}
	for l := range blocks {
		parallel.CopyWeights(m.Blocks[l].Params(), blocks[l].Params())
	}
	return m, man, nil
}

// mergeTPBlock writes a TP group's shards back into the serial block:
// column-parallel weights (W_Q/W_K/W_V, FC1) re-interleave along
// columns, row-parallel weights (W_O, FC2) concatenate along rows,
// replicated parameters (layer norms, QK-norms, output biases) come
// from rank 0.
func mergeTPBlock(dst *nn.TransformerBlock, shards []*parallel.TPBlock) {
	k := len(shards)
	dst.LN1.Gamma.W.CopyFrom(shards[0].LN1.Gamma.W)
	dst.LN1.Beta.W.CopyFrom(shards[0].LN1.Beta.W)
	dst.LN2.Gamma.W.CopyFrom(shards[0].LN2.Gamma.W)
	dst.LN2.Beta.W.CopyFrom(shards[0].LN2.Beta.W)
	if dst.Attn.QKNorm {
		dst.Attn.QNorm.Gamma.W.CopyFrom(shards[0].Attn.QNorm.Gamma.W)
		dst.Attn.QNorm.Beta.W.CopyFrom(shards[0].Attn.QNorm.Beta.W)
		dst.Attn.KNorm.Gamma.W.CopyFrom(shards[0].Attn.KNorm.Gamma.W)
		dst.Attn.KNorm.Beta.W.CopyFrom(shards[0].Attn.KNorm.Beta.W)
	}
	for t, sh := range shards {
		mergeCols(dst.Attn.WQ.Weight.W, sh.Attn.WQ.Weight.W, t, k)
		mergeColsVec(dst.Attn.WQ.Bias.W, sh.Attn.WQ.Bias.W, t, k)
		mergeCols(dst.Attn.WK.Weight.W, sh.Attn.WK.Weight.W, t, k)
		mergeColsVec(dst.Attn.WK.Bias.W, sh.Attn.WK.Bias.W, t, k)
		mergeCols(dst.Attn.WV.Weight.W, sh.Attn.WV.Weight.W, t, k)
		mergeColsVec(dst.Attn.WV.Bias.W, sh.Attn.WV.Bias.W, t, k)
		mergeRows(dst.Attn.WO.Weight.W, sh.Attn.WO.Weight.W, t, k)
		mergeCols(dst.MLP.FC1.Weight.W, sh.MLP.FC1.Weight.W, t, k)
		mergeColsVec(dst.MLP.FC1.Bias.W, sh.MLP.FC1.Bias.W, t, k)
		mergeRows(dst.MLP.FC2.Weight.W, sh.MLP.FC2.Weight.W, t, k)
	}
	dst.Attn.WO.Bias.W.CopyFrom(shards[0].Attn.WO.Bias.W)
	dst.MLP.FC2.Bias.W.CopyFrom(shards[0].MLP.FC2.Bias.W)
}

// mergeCols writes column shard t of k into dst's column range.
func mergeCols(dst, shard *tensor.Tensor, t, k int) {
	rows, cols := dst.Dim(0), dst.Dim(1)
	part := cols / k
	dd, sd := dst.Data(), shard.Data()
	for r := 0; r < rows; r++ {
		copy(dd[r*cols+t*part:r*cols+(t+1)*part], sd[r*part:(r+1)*part])
	}
	dst.Bump()
}

// mergeColsVec writes bias shard t of k into dst's range.
func mergeColsVec(dst, shard *tensor.Tensor, t, k int) {
	part := dst.Len() / k
	copy(dst.Data()[t*part:(t+1)*part], shard.Data())
	dst.Bump()
}

// mergeRows writes row shard t of k into dst's row range.
func mergeRows(dst, shard *tensor.Tensor, t, k int) {
	rows, cols := dst.Dim(0), dst.Dim(1)
	part := rows / k
	copy(dst.Data()[t*part*cols:(t+1)*part*cols], shard.Data())
	dst.Bump()
}
