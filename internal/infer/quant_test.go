package infer

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"orbit/internal/ckpt"
	"orbit/internal/metrics"
	"orbit/internal/quant"
	"orbit/internal/tensor"
)

// Golden-rollout wRMSE degradation ceilings for quantized serving:
// the worst per-channel latitude-weighted RMSE, over every rollout
// step, between the quantized engine's predictions and the frozen f32
// golden rollout. Measured on the frozen checkpoint (int8 0.0154,
// Q4_0 0.354 — the seed-initialized golden net's layer norms amplify
// weight noise, so these sit far above what a trained model shows)
// and pinned with ~2x headroom; int8 must stay an order of magnitude
// tighter than Q4_0. A kernel or format change that degrades
// quantized skill walks straight into these.
const (
	int8GoldenWRMSE = 0.03
	q4GoldenWRMSE   = 0.70
)

// rolloutSteps runs the golden rollout configuration through an
// already-built engine, copying out each step's prediction.
func rolloutSteps(t *testing.T, eng *Engine) [][]float32 {
	t.Helper()
	steps := make([][]float32, goldenSteps)
	eng.Rollout(goldenIC(), goldenSteps, goldenLead, func(_, s int, pred *tensor.Tensor) {
		steps[s] = append([]float32(nil), pred.Data()...)
	})
	return steps
}

// TestQuantServingBitIdentity pins the strongest property the fused
// kernel gives us: an engine serving quantized containers produces
// bit-identical rollouts to a plain f32 engine over the dequantized
// model — quantization error lives entirely in the stored weights,
// never in the execution path.
func TestQuantServingBitIdentity(t *testing.T) {
	m, err := LoadModel(filepath.Join("testdata", "golden", "tiny.ckpt"))
	if err != nil {
		t.Fatalf("loading frozen checkpoint: %v", err)
	}
	for _, kind := range []quant.Kind{quant.Int8, quant.Q4_0} {
		qPath := filepath.Join(t.TempDir(), "quant.orbt")
		if err := ckpt.SaveQuantized(qPath, m, kind); err != nil {
			t.Fatal(err)
		}
		mq, qs, err := LoadModelQuantized(qPath)
		if err != nil {
			t.Fatal(err)
		}
		engQ, err := NewEngine(mq, Config{ResidualChans: goldenResidualChans, Quant: qs})
		if err != nil {
			t.Fatal(err)
		}
		engF, err := NewEngine(mq, Config{ResidualChans: goldenResidualChans})
		if err != nil {
			t.Fatal(err)
		}
		got, want := rolloutSteps(t, engQ), rolloutSteps(t, engF)
		for s := range want {
			for i := range want[s] {
				if got[s][i] != want[s][i] {
					t.Fatalf("%s: step %d value %d: quantized engine %v, dequantized f32 engine %v — fused kernel diverged from the packed path",
						kind, s, i, got[s][i], want[s][i])
				}
			}
		}
	}
}

// TestQuantGoldenDegradation is the quantized skill gate: rollouts
// served from int8 and Q4_0 checkpoints must stay within the pinned
// wRMSE ceilings of the frozen f32 golden rollout, and int8 must beat
// Q4_0.
func TestQuantGoldenDegradation(t *testing.T) {
	b, err := os.ReadFile(filepath.Join("testdata", "golden", "rollout.json"))
	if err != nil {
		t.Fatalf("missing golden values (run TestGoldenRollout -update first): %v", err)
	}
	var g goldenFile
	if err := json.Unmarshal(b, &g); err != nil {
		t.Fatal(err)
	}
	m, err := LoadModel(filepath.Join("testdata", "golden", "tiny.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := goldenConfig()

	worst := make(map[quant.Kind]float64)
	for _, tc := range []struct {
		kind    quant.Kind
		ceiling float64
	}{{quant.Int8, int8GoldenWRMSE}, {quant.Q4_0, q4GoldenWRMSE}} {
		qPath := filepath.Join(t.TempDir(), "quant.orbt")
		if err := ckpt.SaveQuantized(qPath, m, tc.kind); err != nil {
			t.Fatal(err)
		}
		mq, qs, err := LoadModelQuantized(qPath)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewEngine(mq, Config{ResidualChans: goldenResidualChans, Quant: qs})
		if err != nil {
			t.Fatal(err)
		}
		steps := rolloutSteps(t, eng)
		for s := range steps {
			pred := tensor.FromSlice(steps[s], cfg.OutChannels, cfg.Height, cfg.Width)
			gold := tensor.FromSlice(g.Steps[s], cfg.OutChannels, cfg.Height, cfg.Width)
			for _, r := range metrics.WeightedRMSE(pred, gold) {
				if r > worst[tc.kind] {
					worst[tc.kind] = r
				}
			}
		}
		t.Logf("%s: worst golden-rollout wRMSE degradation %.6f (ceiling %g)", tc.kind, worst[tc.kind], tc.ceiling)
		if worst[tc.kind] > tc.ceiling {
			t.Errorf("%s: golden-rollout wRMSE degradation %.6f exceeds pinned ceiling %g",
				tc.kind, worst[tc.kind], tc.ceiling)
		}
		if worst[tc.kind] == 0 {
			t.Errorf("%s: zero degradation is implausible for a lossy format (test wiring broken?)", tc.kind)
		}
	}
	if worst[quant.Int8] >= worst[quant.Q4_0] {
		t.Errorf("int8 degradation %.6f not tighter than q4_0's %.6f", worst[quant.Int8], worst[quant.Q4_0])
	}
}

// TestQuantPlanAllocs: the steady-state quantized forward allocates
// nothing — the fused kernel's panel scratch comes from pools and the
// plan's workspaces are preallocated, exactly like the f32 path.
func TestQuantPlanAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the gate runs in the plain test job")
	}
	m, err := LoadModel(filepath.Join("testdata", "golden", "tiny.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	qPath := filepath.Join(t.TempDir(), "quant.orbt")
	if err := ckpt.SaveQuantized(qPath, m, quant.Q4_0); err != nil {
		t.Fatal(err)
	}
	mq, qs, err := LoadModelQuantized(qPath)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlanQ(mq, 2, qs)
	cfg := mq.Config
	xs := []*tensor.Tensor{goldenIC().Reshape(cfg.Channels, cfg.Height, cfg.Width), goldenIC().Reshape(cfg.Channels, cfg.Height, cfg.Width)}
	leads := []float64{goldenLead, goldenLead}
	p.Forward(xs, leads) // prime packing, size-2 headers, pools
	if allocs := testing.AllocsPerRun(10, func() { p.Forward(xs, leads) }); allocs > 0 {
		t.Errorf("quantized steady-state Forward allocates %v times per call, want 0", allocs)
	}
}

// TestQuantTPRejected: the tensor-parallel trunk shards f32 weights,
// so a quantized TP engine must fail loudly at construction.
func TestQuantTPRejected(t *testing.T) {
	m, err := LoadModel(filepath.Join("testdata", "golden", "tiny.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	qs := map[string]*tensor.Quantized{}
	if _, err := NewEngine(m, Config{ResidualChans: goldenResidualChans, TP: 2, Quant: qs}); err == nil {
		t.Error("TP engine accepted quantized containers")
	}
}
