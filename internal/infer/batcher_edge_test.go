package infer

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestBatcherDoRacesClose hammers Do from many goroutines while Close
// runs concurrently: every request must resolve exactly once — served
// with valid scores or refused with ErrClosed — with no hang, double
// send, or lost reply. Run under `make race`.
func TestBatcherDoRacesClose(t *testing.T) {
	b, _ := batcherFixture(t, 4, 5*time.Millisecond)
	const n = 32
	var served, refused int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := b.Do(Request{Start: i % 64, Steps: 1})
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil && len(r.Scores) == 1:
				served++
			case errors.Is(err, ErrClosed):
				refused++
			default:
				t.Errorf("request %d: r=%v err=%v", i, r, err)
			}
		}(i)
	}
	time.Sleep(2 * time.Millisecond) // let some requests get in first
	b.Close()
	wg.Wait()
	if served+refused != n {
		t.Fatalf("%d served + %d refused != %d submitted", served, refused, n)
	}
	if served == 0 {
		t.Log("note: Close won the race before any request was admitted")
	}
}

// TestBatcherDoubleClose proves Close is idempotent and that a closed
// batcher refuses work without panicking.
func TestBatcherDoubleClose(t *testing.T) {
	b, _ := batcherFixture(t, 4, time.Millisecond)
	if _, err := b.Do(Request{Start: 0, Steps: 1}); err != nil {
		t.Fatalf("warm request: %v", err)
	}
	b.Close()
	b.Close()
	if _, err := b.Do(Request{Start: 0, Steps: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Do after double Close: got %v, want ErrClosed", err)
	}
}

// TestBatcherTimerFillRace races the MaxWait timer against batch fill:
// with a timer short enough to fire mid-fill, every submitted request
// must still be served exactly once, whichever side claims the batch.
// The generation counter in the batcher is what makes a stale timer
// claim nothing; this is its regression test. Run under `make race`.
func TestBatcherTimerFillRace(t *testing.T) {
	b, _ := batcherFixture(t, 4, 0) // 0 clamps to the 2ms default — still racy vs fill
	defer b.Close()
	const rounds = 20
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		for i := 0; i < b.MaxBatch; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				r, err := b.Do(Request{Start: i, Steps: 1})
				if err != nil || len(r.Scores) != 1 {
					t.Errorf("round %d request %d: r=%v err=%v", round, i, r, err)
				}
			}(i)
		}
		wg.Wait()
	}
}

// TestBatcherDefaultsMaxWait pins the constructor's clamping of
// zero/negative MaxWait (and zero MaxBatch) to usable defaults.
func TestBatcherDefaultsMaxWait(t *testing.T) {
	for _, w := range []time.Duration{0, -time.Second} {
		b, eng := batcherFixture(t, 8, w)
		if b.MaxWait <= 0 {
			t.Fatalf("MaxWait %v not clamped to a positive default", w)
		}
		if b.MaxBatch != 8 {
			t.Fatalf("MaxBatch = %d, want 8", b.MaxBatch)
		}
		// A lone request must still be served promptly.
		start := time.Now()
		if _, err := b.Do(Request{Start: 0, Steps: 1}); err != nil {
			t.Fatal(err)
		}
		if e := time.Since(start); e > 5*time.Second {
			t.Fatalf("lone request took %v", e)
		}
		b.Close()
		// maxBatch <= 0 defaults to the engine's fused width.
		b2 := NewBatcher(eng, b.sc, 0, 0)
		if b2.MaxBatch != eng.Cfg.MaxBatch {
			t.Fatalf("MaxBatch default = %d, want engine width %d", b2.MaxBatch, eng.Cfg.MaxBatch)
		}
		b2.Close()
	}
}

// TestBatcherValidationTyped proves bad requests are refused at
// admission with *RequestError — before they can reach the engine.
func TestBatcherValidationTyped(t *testing.T) {
	b, _ := batcherFixture(t, 4, time.Millisecond)
	defer b.Close()
	for _, req := range []Request{
		{Start: 0, Steps: 0},
		{Start: 0, Steps: -3},
		{Start: -1, Steps: 1},
		{Start: 1 << 20, Steps: 1},
	} {
		var re *RequestError
		_, err := b.Do(req)
		if !errors.As(err, &re) {
			t.Fatalf("request %+v: got %v, want *RequestError", req, err)
		}
		if re.Start != req.Start || re.Reason == "" {
			t.Fatalf("request %+v: malformed error %+v", req, re)
		}
	}
}

// TestScoredRolloutBatchPanicsTyped pins the direct-engine contract:
// the no-error-return ScoredRolloutBatch fails fast on a bad start with
// the same typed error, as a panic value, instead of an index panic
// deep in the rollout.
func TestScoredRolloutBatchPanicsTyped(t *testing.T) {
	b, eng := batcherFixture(t, 2, time.Millisecond)
	defer b.Close()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("bad start did not panic")
		}
		if _, ok := r.(*RequestError); !ok {
			t.Fatalf("panic value %T, want *RequestError", r)
		}
	}()
	eng.ScoredRolloutBatch(b.sc, []int{-7}, 1)
}

// TestBatcherContextExpiredBeforeFormation parks a request whose
// deadline passes before the batch runs: the caller unblocks with
// ctx.Err() and the member is dropped at formation (DroppedExpired),
// never occupying a batch slot.
func TestBatcherContextExpiredBeforeFormation(t *testing.T) {
	b, _ := batcherFixture(t, 8, 300*time.Millisecond)
	defer b.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := b.DoContext(ctx, Request{Start: 0, Steps: 1})
		done <- err
	}()
	// Wait for admission, then cancel the parked request.
	for end := time.Now().Add(5 * time.Second); ; {
		b.mu.Lock()
		n := len(b.pending)
		b.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(end) {
			t.Fatal("request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled request returned %v", err)
	}
	// A live request flushes the batch; the canceled member must not
	// share it.
	r, err := b.DoContext(context.Background(), Request{Start: 1, Steps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Coalesced != 1 {
		t.Fatalf("canceled member occupied a batch slot: coalesced %d", r.Coalesced)
	}
	if got := b.DroppedExpired(); got != 1 {
		t.Fatalf("DroppedExpired = %d, want 1", got)
	}
}

// TestBatcherDeadlineCapsWait proves a member deadline tighter than
// MaxWait flushes the batch early: against a 10s MaxWait, a 100ms
// deadline must yield a response (or a deadline error) in well under a
// second.
func TestBatcherDeadlineCapsWait(t *testing.T) {
	b, _ := batcherFixture(t, 8, 10*time.Second)
	defer b.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	r, err := b.DoContext(ctx, Request{Start: 0, Steps: 1})
	elapsed := time.Since(start)
	if elapsed > 5*time.Second {
		t.Fatalf("deadline did not cap the batch horizon: waited %v", elapsed)
	}
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("unexpected error %v", err)
	}
	if err == nil && len(r.Scores) != 1 {
		t.Fatalf("served response malformed: %+v", r)
	}
	// An already-expired context is refused before admission.
	dead, cancelDead := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancelDead()
	if _, err := b.DoContext(dead, Request{Start: 0, Steps: 1}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired context admitted: %v", err)
	}
}
