package pp

import (
	"reflect"
	"testing"

	"orbit/internal/cluster"
	"orbit/internal/comm"
	"orbit/internal/core"
	"orbit/internal/tensor"
)

func TestParseLayout(t *testing.T) {
	cases := []struct {
		spec string
		want Layout
	}{
		{"2x4x8", Layout{TP: 2, PP: 1, FSDP: 4, DDP: 8}},
		{"2x2x4x8", Layout{TP: 2, PP: 2, FSDP: 4, DDP: 8}},
		{" 1X2X1X1 ", Layout{TP: 1, PP: 2, FSDP: 1, DDP: 1}},
	}
	for _, c := range cases {
		got, err := ParseLayout(c.spec)
		if err != nil {
			t.Fatalf("ParseLayout(%q): %v", c.spec, err)
		}
		if got != c.want {
			t.Fatalf("ParseLayout(%q) = %+v, want %+v", c.spec, got, c.want)
		}
	}
	for _, bad := range []string{"", "2", "2x4", "2x4x8x16x32", "axbxc", "2x0x4x8", "-1x1x1x1"} {
		if _, err := ParseLayout(bad); err == nil {
			t.Fatalf("ParseLayout(%q) accepted", bad)
		}
	}
}

func TestLayoutString(t *testing.T) {
	l := Layout{TP: 2, PP: 3, FSDP: 4, DDP: 5}
	if l.String() != "2x3x4x5" {
		t.Fatalf("String() = %q", l.String())
	}
	if l.Ranks() != 120 {
		t.Fatalf("Ranks() = %d", l.Ranks())
	}
}

func TestRankCoordRoundTrip(t *testing.T) {
	l := Layout{TP: 2, PP: 3, FSDP: 2, DDP: 2}
	seen := make(map[int]bool)
	for p := 0; p < l.PP; p++ {
		for d := 0; d < l.DDP; d++ {
			for f := 0; f < l.FSDP; f++ {
				for tp := 0; tp < l.TP; tp++ {
					c := Coord{T: tp, P: p, F: f, D: d}
					r := l.RankOf(c)
					if r < 0 || r >= l.Ranks() || seen[r] {
						t.Fatalf("RankOf(%+v) = %d invalid or duplicate", c, r)
					}
					seen[r] = true
					if got := l.CoordOf(r); got != c {
						t.Fatalf("CoordOf(%d) = %+v, want %+v", r, got, c)
					}
				}
			}
		}
	}
	// PP is the slowest axis: stage p owns the contiguous rank window
	// [p·inner, (p+1)·inner) and the interior ordering is core's.
	inner := l.Inner()
	for p := 0; p < l.PP; p++ {
		for r3 := 0; r3 < inner.Ranks(); r3++ {
			c3 := inner.CoordOf(r3)
			r4 := l.RankOf(Coord{T: c3.T, P: p, F: c3.F, D: c3.D})
			if r4 != p*inner.Ranks()+r3 {
				t.Fatalf("stage %d inner rank %d maps to %d, want %d", p, r3, r4, p*inner.Ranks()+r3)
			}
		}
	}
}

func TestPartitionBalance(t *testing.T) {
	cases := []struct {
		cost   []int64
		stages int
		want   [][2]int
	}{
		// Uniform costs: smaller stages first (earliest-cut tie-break).
		{[]int64{1, 1, 1, 1, 1}, 2, [][2]int{{0, 2}, {2, 5}}},
		// Earliest feasible cut: stage 0 keeps only what optimality
		// forces on it (the suffix still splits under the bottleneck).
		{[]int64{1, 1, 1, 1, 1, 1, 1}, 3, [][2]int{{0, 1}, {1, 4}, {4, 7}}},
		// Skewed: the heavy block gets its own stage.
		{[]int64{10, 1, 1, 1}, 2, [][2]int{{0, 1}, {1, 4}}},
		{[]int64{1, 1, 1, 10}, 2, [][2]int{{0, 3}, {3, 4}}},
		// One stage = whole stack.
		{[]int64{3, 1, 4}, 1, [][2]int{{0, 3}}},
		// Stages = blocks: singletons.
		{[]int64{2, 2, 2}, 3, [][2]int{{0, 1}, {1, 2}, {2, 3}}},
		// Zero-cost blocks are legal.
		{[]int64{0, 0, 5, 0}, 2, [][2]int{{0, 1}, {1, 4}}},
	}
	for _, c := range cases {
		got, err := Partition(c.cost, c.stages)
		if err != nil {
			t.Fatalf("Partition(%v, %d): %v", c.cost, c.stages, err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Fatalf("Partition(%v, %d) = %v, want %v", c.cost, c.stages, got, c.want)
		}
	}
}

func TestPartitionOptimalBottleneck(t *testing.T) {
	cost := []int64{3, 1, 4, 1, 5, 9, 2, 6}
	for stages := 1; stages <= len(cost); stages++ {
		cuts, err := Partition(cost, stages)
		if err != nil {
			t.Fatal(err)
		}
		if len(cuts) != stages {
			t.Fatalf("stages=%d: %d ranges", stages, len(cuts))
		}
		// Contiguous non-empty cover.
		prev := 0
		var bottleneck int64
		for _, rng := range cuts {
			if rng[0] != prev || rng[1] <= rng[0] {
				t.Fatalf("stages=%d: bad range %v in %v", stages, rng, cuts)
			}
			prev = rng[1]
			var s int64
			for _, v := range cost[rng[0]:rng[1]] {
				s += v
			}
			if s > bottleneck {
				bottleneck = s
			}
		}
		if prev != len(cost) {
			t.Fatalf("stages=%d: cover ends at %d", stages, prev)
		}
		// Optimality: no brute-force partition does better.
		if best := bruteBottleneck(cost, stages); bottleneck != best {
			t.Fatalf("stages=%d: bottleneck %d, optimum %d", stages, bottleneck, best)
		}
	}
}

// bruteBottleneck exhaustively minimizes the max stage cost.
func bruteBottleneck(cost []int64, stages int) int64 {
	if stages == 1 {
		var s int64
		for _, v := range cost {
			s += v
		}
		return s
	}
	best := int64(1) << 62
	for cut := 1; cut <= len(cost)-stages+1; cut++ {
		var head int64
		for _, v := range cost[:cut] {
			head += v
		}
		rest := bruteBottleneck(cost[cut:], stages-1)
		if rest > head {
			head = rest
		}
		if head < best {
			best = head
		}
	}
	return best
}

func TestPartitionErrors(t *testing.T) {
	if _, err := Partition([]int64{1, 2}, 0); err == nil {
		t.Fatal("stages=0 accepted")
	}
	if _, err := Partition([]int64{1}, 2); err == nil {
		t.Fatal("more stages than blocks accepted")
	}
	if _, err := Partition([]int64{1, -1}, 1); err == nil {
		t.Fatal("negative cost accepted")
	}
}

func TestUniformPartition(t *testing.T) {
	got, err := UniformPartition(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]int{{0, 1}, {1, 4}, {4, 7}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("UniformPartition(7,3) = %v, want %v", got, want)
	}
}

func TestScheduleFor1F1B(t *testing.T) {
	scheds, err := ScheduleFor(Schedule1F1B, 3, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Stage 0 (w=2): F0 F1 (F2,B0) (F3,B1) B2 B3.
	want0 := []Op{{Fwd, 0, 0}, {Fwd, 0, 1}, {Fwd, 0, 2}, {Bwd, 0, 0}, {Fwd, 0, 3}, {Bwd, 0, 1}, {Bwd, 0, 2}, {Bwd, 0, 3}}
	if !reflect.DeepEqual(scheds[0], want0) {
		t.Fatalf("stage 0: %v", scheds[0])
	}
	// Last stage (w=0): strict (F_i, B_i) pairs.
	wantLast := []Op{{Fwd, 0, 0}, {Bwd, 0, 0}, {Fwd, 0, 1}, {Bwd, 0, 1}, {Fwd, 0, 2}, {Bwd, 0, 2}, {Fwd, 0, 3}, {Bwd, 0, 3}}
	if !reflect.DeepEqual(scheds[2], wantLast) {
		t.Fatalf("stage 2: %v", scheds[2])
	}
	for s, ops := range scheds {
		checkScheduleComplete(t, s, ops, 1, 4)
	}
}

func TestScheduleForInterleaved(t *testing.T) {
	scheds, err := ScheduleFor(ScheduleInterleaved, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []Op{
		{Fwd, 0, 0}, {Fwd, 0, 1}, {Fwd, 1, 0}, {Fwd, 1, 1},
		{Bwd, 1, 0}, {Bwd, 1, 1}, {Bwd, 0, 0}, {Bwd, 0, 1},
	}
	for s := range scheds {
		if !reflect.DeepEqual(scheds[s], want) {
			t.Fatalf("stage %d: %v, want %v", s, scheds[s], want)
		}
		checkScheduleComplete(t, s, scheds[s], 2, 2)
	}
}

// checkScheduleComplete asserts every (chunk, micro) appears exactly
// once per kind, and each backward follows its forward.
func checkScheduleComplete(t *testing.T, stage int, ops []Op, chunks, micros int) {
	t.Helper()
	fwdAt := make(map[[2]int]int)
	bwdAt := make(map[[2]int]int)
	for i, op := range ops {
		k := [2]int{op.Chunk, op.Micro}
		m := fwdAt
		if op.Kind == Bwd {
			m = bwdAt
		}
		if _, dup := m[k]; dup {
			t.Fatalf("stage %d: duplicate %v%v", stage, op.Kind, k)
		}
		m[k] = i
	}
	if len(fwdAt) != chunks*micros || len(bwdAt) != chunks*micros {
		t.Fatalf("stage %d: %d forwards, %d backwards, want %d each", stage, len(fwdAt), len(bwdAt), chunks*micros)
	}
	for k, bi := range bwdAt {
		if fi, ok := fwdAt[k]; !ok || fi > bi {
			t.Fatalf("stage %d: backward %v before its forward", stage, k)
		}
	}
}

func TestScheduleForErrors(t *testing.T) {
	if _, err := ScheduleFor(Schedule1F1B, 0, 1, 1); err == nil {
		t.Fatal("stages=0 accepted")
	}
	if _, err := ScheduleFor(Schedule1F1B, 2, 2, 1); err == nil {
		t.Fatal("1F1B with chunks=2 accepted")
	}
	if _, err := ScheduleFor(ScheduleKind(99), 2, 1, 1); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestKindStrings(t *testing.T) {
	if Fwd.String() != "F" || Bwd.String() != "B" {
		t.Fatal("OpKind strings")
	}
	if Schedule1F1B.String() != "1f1b" || ScheduleInterleaved.String() != "interleaved" {
		t.Fatal("ScheduleKind strings")
	}
}

func TestBuildErrors(t *testing.T) {
	ref := confStack(4, false)
	opts := confOpts(1)
	m := cluster.NewMachine(cluster.Frontier(), 1, 0)

	// Bad layout.
	if _, err := Build(Layout{TP: 0, PP: 1, FSDP: 1, DDP: 1}, 1, [][2]int{{0, 4}}, m, ref, opts); err == nil {
		t.Fatal("zero TP accepted")
	}
	// PP>1 without wrapping/checkpointing.
	bare := opts
	bare.LayerWrapping = false
	if _, err := Build(Layout{TP: 1, PP: 2, FSDP: 1, DDP: 1}, 1, [][2]int{{0, 2}, {2, 4}}, m, ref, bare); err == nil {
		t.Fatal("PP=2 without layer wrapping accepted")
	}
	noCkpt := opts
	noCkpt.ActivationCheckpoint = false
	if _, err := Build(Layout{TP: 1, PP: 2, FSDP: 1, DDP: 1}, 1, [][2]int{{0, 2}, {2, 4}}, m, ref, noCkpt); err == nil {
		t.Fatal("PP=2 without activation checkpointing accepted")
	}
	// Wrong range count.
	if _, err := Build(Layout{TP: 1, PP: 2, FSDP: 1, DDP: 1}, 1, [][2]int{{0, 4}}, m, ref, opts); err == nil {
		t.Fatal("1 range for 2 stages accepted")
	}
	// Non-contiguous / gapped cover.
	if _, err := Build(Layout{TP: 1, PP: 2, FSDP: 1, DDP: 1}, 1, [][2]int{{0, 2}, {3, 4}}, m, ref, opts); err == nil {
		t.Fatal("gapped ranges accepted")
	}
	// Empty stage.
	if _, err := Build(Layout{TP: 1, PP: 2, FSDP: 1, DDP: 1}, 1, [][2]int{{0, 4}, {4, 4}}, m, ref, opts); err == nil {
		t.Fatal("empty stage accepted")
	}
	// Incomplete cover.
	if _, err := Build(Layout{TP: 1, PP: 2, FSDP: 1, DDP: 1}, 1, [][2]int{{0, 2}, {2, 3}}, m, ref, opts); err == nil {
		t.Fatal("incomplete cover accepted")
	}
	// Not enough devices: 4 stages × 8 ranks needs 32, machine has 8.
	if _, err := Build(Layout{TP: 2, PP: 4, FSDP: 2, DDP: 2}, 1, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}}, m, ref, opts); err == nil {
		t.Fatal("oversubscribed machine accepted")
	}
}

func TestEngineAccessors(t *testing.T) {
	ref := confStack(4, false)
	opts := confOpts(1)
	m := cluster.NewMachine(cluster.Frontier(), 1, 0)
	l := Layout{TP: 1, PP: 2, FSDP: 2, DDP: 1}
	stages, err := UniformPartition(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	engines, err := Build(l, 1, stages, m, ref, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(engines) != l.Ranks() {
		t.Fatalf("%d engines, want %d", len(engines), l.Ranks())
	}
	e := engines[0]
	if got := len(e.Chunks()); got != 2 {
		t.Fatalf("stage 0 owns %d chunks, want 2", got)
	}
	if got := len(e.LogicalFlatLens()); got != 2 {
		t.Fatalf("stage 0 has %d flat lens, want 2", got)
	}
	// A 3D engine over the full stack must agree with the two stages'
	// concatenated logical lengths.
	g3, err := core.BuildGroups(l.Inner(), m)
	if err != nil {
		t.Fatal(err)
	}
	e3, err := core.NewEngine(0, l.Inner(), g3[0], ref, opts, m.Devices[0])
	if err != nil {
		t.Fatal(err)
	}
	all := append(append([]int{}, engines[0].LogicalFlatLens()...), engines[l.Inner().Ranks()].LogicalFlatLens()...)
	if !reflect.DeepEqual(all, e3.LogicalFlatLens()) {
		t.Fatalf("stage flat lens %v != 3D %v", all, e3.LogicalFlatLens())
	}
}

func TestPoisonCommUnblocksLinks(t *testing.T) {
	ref := confStack(2, false)
	opts := confOpts(1)
	m := cluster.NewMachine(cluster.Frontier(), 1, 0)
	engines, err := Build(Layout{TP: 1, PP: 2, FSDP: 1, DDP: 1}, 1, [][2]int{{0, 1}, {1, 2}}, m, ref, opts)
	if err != nil {
		t.Fatal(err)
	}
	engines[1].PoisonComm()
	defer func() {
		if _, ok := recover().(comm.Poisoned); !ok {
			t.Fatal("RunStep on a poisoned engine did not panic with comm.Poisoned")
		}
	}()
	engines[1].RunStep(Schedule1F1B, 1, StepIO{
		Shape:    []int{confTokens, confDim},
		Input:    func(mu int) *tensor.Tensor { return sampleX(0, mu) },
		LossGrad: func(mu int, y *tensor.Tensor) (float64, *tensor.Tensor) { return lossGrad(y) },
	})
}
