package pp

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"orbit/internal/cluster"
	"orbit/internal/core"
	"orbit/internal/nn"
	"orbit/internal/tensor"
)

// The schedule-conformance layer: every pipeline schedule must
// produce losses and per-parameter gradients bit-identical to the
// single-stage 3D reference before any layout is allowed to use it.
// 1F1B ordering bugs corrupt gradients silently — these tests are the
// gate that makes that failure mode loud.

const (
	confDim    = 8
	confHeads  = 2
	confTokens = 6
)

func confStack(layers int, qk bool) []*nn.TransformerBlock {
	rng := tensor.NewRNG(1007)
	ref := make([]*nn.TransformerBlock, layers)
	for i := range ref {
		ref[i] = nn.NewTransformerBlock(fmt.Sprintf("pp%d", i), confDim, confHeads, qk, rng)
	}
	return ref
}

// sampleX is the deterministic per-(data rank, micro) input.
func sampleX(d, mu int) *tensor.Tensor {
	rng := tensor.NewRNG((uint64(d)*131 + uint64(mu) + 1) * 0x9E3779B97F4A7C15)
	return tensor.Randn(rng, 1, confTokens, confDim)
}

// lossGrad is the shared data plane: loss |y|²/n, gradient 2y/n —
// a pure function of the stage output, so the pipeline's last stage
// computes exactly what the reference does.
func lossGrad(y *tensor.Tensor) (float64, *tensor.Tensor) {
	n := y.Len()
	data := y.Data()
	var s float64
	g := make([]float32, n)
	for i, v := range data {
		s += float64(v) * float64(v)
		g[i] = 2 * v / float32(n)
	}
	return s / float64(n), tensor.FromSlice(g, confTokens, confDim)
}

// stepResult collects one run's observables: per-(F,D) micro-summed
// losses and per-(T,F,global block) accumulated chunk gradients.
type stepResult struct {
	loss  map[[2]int]float64
	grads map[[3]int][]float32
}

// runReference executes one step of today's 3D engine (the
// single-stage reference): per rank, Forward/Backward per micro in
// order with host-side gradient accumulation.
func runReference(t *testing.T, l3 core.Layout, layers, micros int, qk bool, opts core.Options) stepResult {
	t.Helper()
	m := cluster.NewMachine(cluster.Frontier(), (l3.Ranks()+7)/8, 0)
	groups, err := core.BuildGroups(l3, m)
	if err != nil {
		t.Fatal(err)
	}
	ref := confStack(layers, qk)
	engines := make([]*core.Engine, l3.Ranks())
	for r := range engines {
		e, err := core.NewEngine(r, l3, groups[r], ref, opts, m.Devices[r])
		if err != nil {
			t.Fatal(err)
		}
		engines[r] = e
	}
	res := stepResult{loss: map[[2]int]float64{}, grads: map[[3]int][]float32{}}
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make([]error, len(engines))
	for r := range engines {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			e := engines[rank]
			d := e.Coord.D*l3.FSDP + e.Coord.F
			accum := make([][]float32, layers)
			for b, c := range e.Chunks() {
				accum[b] = make([]float32, c.Grad.Len())
			}
			var lsum float64
			for m := 0; m < micros; m++ {
				y, err := e.Forward(sampleX(d, m))
				if err != nil {
					errs[rank] = err
					return
				}
				loss, g := lossGrad(y)
				lsum += loss
				if _, err := e.Backward(g); err != nil {
					errs[rank] = err
					return
				}
				for b, c := range e.Chunks() {
					for i, v := range c.Grad.Data() {
						accum[b][i] += v
					}
				}
			}
			if e.Coord.D == 0 {
				mu.Lock()
				if e.Coord.T == 0 {
					res.loss[[2]int{e.Coord.F, 0}] = lsum
				}
				for b := range accum {
					res.grads[[3]int{e.Coord.T, e.Coord.F, b}] = accum[b]
				}
				mu.Unlock()
			} else if e.Coord.T == 0 {
				mu.Lock()
				res.loss[[2]int{e.Coord.F, e.Coord.D}] = lsum
				mu.Unlock()
			}
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	return res
}

// runPipeline executes one step of a 4D layout under the given
// schedule and collects the same observables, mapping each chunk
// engine's blocks back to global block indices.
func runPipeline(t *testing.T, l Layout, chunks int, kind ScheduleKind, layers, micros int, qk bool, opts core.Options) (stepResult, *cluster.Machine) {
	t.Helper()
	if chunks < 1 {
		chunks = 1
	}
	m := cluster.NewMachine(cluster.Frontier(), (l.Ranks()+7)/8, 0)
	stages, err := UniformPartition(layers, l.PP*chunks)
	if err != nil {
		t.Fatal(err)
	}
	engines, err := Build(l, chunks, stages, m, confStack(layers, qk), opts)
	if err != nil {
		t.Fatal(err)
	}
	res := stepResult{loss: map[[2]int]float64{}, grads: map[[3]int][]float32{}}
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make([]error, len(engines))
	for r := range engines {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			e := engines[rank]
			d := e.Coord.D*l.FSDP + e.Coord.F
			accum := make(map[[2]int][]float32) // (chunk, local block)
			for c, ce := range e.Stage {
				for b, p := range ce.Chunks() {
					accum[[2]int{c, b}] = make([]float32, p.Grad.Len())
				}
			}
			loss, err := e.RunStep(kind, micros, StepIO{
				Shape: []int{confTokens, confDim},
				Input: func(mu int) *tensor.Tensor { return sampleX(d, mu) },
				LossGrad: func(mu int, y *tensor.Tensor) (float64, *tensor.Tensor) {
					return lossGrad(y)
				},
				OnMicroGrads: func(c, mu int) {
					for b, p := range e.Stage[c].Chunks() {
						a := accum[[2]int{c, b}]
						for i, v := range p.Grad.Data() {
							a[i] += v
						}
					}
				},
			})
			if err != nil {
				errs[rank] = err
				return
			}
			mu.Lock()
			if e.Coord.T == 0 && e.Coord.P == l.PP-1 {
				res.loss[[2]int{e.Coord.F, e.Coord.D}] = loss
			}
			if e.Coord.D == 0 {
				for c := range e.Stage {
					start := e.StageRanges[c*l.PP+e.Coord.P][0]
					for b, p := range e.Stage[c].Chunks() {
						_ = p
						res.grads[[3]int{e.Coord.T, e.Coord.F, start + b}] = accum[[2]int{c, b}]
					}
				}
			}
			mu.Unlock()
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	return res, m
}

// assertBitIdentical compares losses and every parameter gradient
// exactly — no tolerance.
func assertBitIdentical(t *testing.T, label string, want, got stepResult) {
	t.Helper()
	if len(got.loss) != len(want.loss) {
		t.Fatalf("%s: %d loss entries, reference has %d", label, len(got.loss), len(want.loss))
	}
	for k, w := range want.loss {
		g, ok := got.loss[k]
		if !ok {
			t.Fatalf("%s: no loss for data rank %v", label, k)
		}
		if g != w {
			t.Fatalf("%s: loss at %v = %v, reference %v (not bit-identical)", label, k, g, w)
		}
	}
	if len(got.grads) != len(want.grads) {
		t.Fatalf("%s: %d grad entries, reference has %d", label, len(got.grads), len(want.grads))
	}
	for k, w := range want.grads {
		g, ok := got.grads[k]
		if !ok {
			t.Fatalf("%s: no grads for (T,F,block) %v", label, k)
		}
		if len(g) != len(w) {
			t.Fatalf("%s: grad length at %v = %d, reference %d", label, k, len(g), len(w))
		}
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("%s: grad at %v[%d] = %v, reference %v (not bit-identical)", label, k, i, g[i], w[i])
			}
		}
	}
}

func confOpts(depth int) core.Options {
	return core.Options{
		LayerWrapping:        true,
		Prefetch:             true,
		ActivationCheckpoint: true,
		PrefetchDepth:        depth,
	}
}

// TestScheduleConformance1F1B is the property test over random
// (stages, micro-batches, depth, inner grid) configurations: 1F1B
// must be bit-identical to the single-stage reference.
func TestScheduleConformance1F1B(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for it := 0; it < 12; it++ {
		S := 1 + r.Intn(3)
		tp := 1 << r.Intn(2)
		fsdp := 1 << r.Intn(2)
		ddp := 1 << r.Intn(2)
		layers := S + r.Intn(4)
		micros := 1 + r.Intn(3)
		depth := 1 + r.Intn(2)
		qk := r.Intn(2) == 0
		opts := confOpts(depth)
		if ddp > 1 && r.Intn(2) == 0 {
			opts.DDPBucketBytes = 256
		}
		l := Layout{TP: tp, PP: S, FSDP: fsdp, DDP: ddp}
		label := fmt.Sprintf("iter %d: %s layers=%d micros=%d depth=%d qk=%v", it, l, layers, micros, depth, qk)
		want := runReference(t, l.Inner(), layers, micros, qk, opts)
		got, _ := runPipeline(t, l, 1, Schedule1F1B, layers, micros, qk, opts)
		assertBitIdentical(t, label, want, got)
	}
}

// TestScheduleConformanceInterleaved covers the interleaved
// virtual-stage placement, including the wrap links that close the
// virtual ring.
func TestScheduleConformanceInterleaved(t *testing.T) {
	r := rand.New(rand.NewSource(1337))
	for it := 0; it < 10; it++ {
		S := 1 + r.Intn(3)
		v := 1 + r.Intn(2)
		tp := 1 << r.Intn(2)
		fsdp := 1 << r.Intn(2)
		layers := S*v + r.Intn(3)
		micros := 1 + r.Intn(3)
		qk := r.Intn(2) == 0
		opts := confOpts(1 + r.Intn(2))
		l := Layout{TP: tp, PP: S, FSDP: fsdp, DDP: 1}
		label := fmt.Sprintf("iter %d: %s v=%d layers=%d micros=%d qk=%v", it, l, v, layers, micros, qk)
		want := runReference(t, l.Inner(), layers, micros, qk, opts)
		got, _ := runPipeline(t, l, v, ScheduleInterleaved, layers, micros, qk, opts)
		assertBitIdentical(t, label, want, got)
	}
}

// TestPP1BitIdenticalTo3D pins the no-behavior-change guarantee for
// the unused axis: a PP=1 layout must match the 3D engine not just in
// losses and gradients but in the simulated clock — the identical
// collective sequence runs.
func TestPP1BitIdenticalTo3D(t *testing.T) {
	for _, qk := range []bool{false, true} {
		opts := confOpts(1)
		l := Layout{TP: 2, PP: 1, FSDP: 2, DDP: 1}
		layers, micros := 3, 2

		// Reference clock: measure on a fresh machine.
		m3 := cluster.NewMachine(cluster.Frontier(), 1, 0)
		g3, err := core.BuildGroups(l.Inner(), m3)
		if err != nil {
			t.Fatal(err)
		}
		ref := confStack(layers, qk)
		var wg sync.WaitGroup
		for r := 0; r < l.Inner().Ranks(); r++ {
			e, err := core.NewEngine(r, l.Inner(), g3[r], ref, opts, m3.Devices[r])
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func(e *core.Engine) {
				defer wg.Done()
				d := e.Coord.D*l.FSDP + e.Coord.F
				for mu := 0; mu < micros; mu++ {
					y, _ := e.Forward(sampleX(d, mu))
					_, g := lossGrad(y)
					e.Backward(g)
				}
			}(e)
		}
		wg.Wait()

		want := runReference(t, l.Inner(), layers, micros, qk, opts)
		got, mPP := runPipeline(t, l, 1, Schedule1F1B, layers, micros, qk, opts)
		assertBitIdentical(t, fmt.Sprintf("pp1 qk=%v", qk), want, got)
		if mPP.MaxClock() != m3.MaxClock() {
			t.Fatalf("qk=%v: PP=1 clock %v != 3D clock %v (schedule changed for the unused axis)",
				qk, mPP.MaxClock(), m3.MaxClock())
		}
	}
}
