package pp

import (
	"fmt"

	"orbit/internal/cluster"
	"orbit/internal/comm"
	"orbit/internal/core"
	"orbit/internal/nn"
	"orbit/internal/tensor"
)

// Engine is one global rank of the 4D TP×PP×FSDP×DDP composition: the
// rank's stage owns a contiguous window of devices running an inner
// 3D core grid, and this rank holds one core.Engine per virtual chunk
// assigned to the stage (one for plain layouts, `chunks` for
// interleaved placement — virtual stage c·PP+s lives on stage s).
// Cross-stage transfers use dedicated two-rank point-to-point groups,
// one per (link, direction): with one group per direction both
// endpoints post transfers in plain schedule order, so the rendezvous
// sequence numbers can never disagree and 1F1B is deadlock-free.
type Engine struct {
	Rank   int
	Coord  Coord
	Layout Layout
	// ChunksPerStage is the interleaving factor v: each rank runs v
	// virtual chunks, giving PP·v virtual stages in total.
	ChunksPerStage int
	// StageRanges are the global [start, end) block ranges of all PP·v
	// virtual stages (virtual-stage index order).
	StageRanges [][2]int
	// Stage holds this rank's virtual-chunk engines in chunk order;
	// Stage[c] runs blocks StageRanges[c·PP + Coord.P].
	Stage  []*core.Engine
	Device *cluster.Device

	// Link groups (nil where the topology has no such link): fwdIn
	// carries activations from the upstream stage, fwdOut to the
	// downstream one; bwdIn/bwdOut carry gradients the opposite way.
	// This rank is rank 1 (receiver) of its In groups and rank 0
	// (sender) of its Out groups. With interleaving the S−1→0 wrap
	// links close the virtual-stage ring.
	fwdIn, fwdOut, bwdIn, bwdOut *comm.Group

	pool *comm.BufPool
}

// Build stands up every rank of a 4D layout over the machine's first
// Ranks() devices: per-stage inner 3D communicator grids (each over
// its stage's contiguous device window), per-rank virtual-chunk
// engines sharding the reference stack's stage slices, and the
// point-to-point link groups between counterpart ranks — same (T,F,D)
// — of adjacent stages. chunks ≤ 1 means plain placement (one chunk
// per stage); stageRanges must hold PP·max(chunks,1) contiguous,
// non-empty ranges covering the reference stack exactly.
//
// Pipeline schedules stream several micro-batches through one engine
// before its backwards run, so layouts with PP > 1 or interleaving
// require LayerWrapping and ActivationCheckpoint (the recompute the
// schedule performs is only accounted correctly under the production
// configuration both the paper and DefaultOptions use).
func Build(l Layout, chunks int, stageRanges [][2]int, m *cluster.Machine, ref []*nn.TransformerBlock, opts core.Options) ([]*Engine, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if chunks < 1 {
		chunks = 1
	}
	if (l.PP > 1 || chunks > 1) && (!opts.LayerWrapping || !opts.ActivationCheckpoint) {
		return nil, fmt.Errorf("pp: PP=%d chunks=%d requires LayerWrapping and ActivationCheckpoint", l.PP, chunks)
	}
	K := l.PP * chunks
	if len(stageRanges) != K {
		return nil, fmt.Errorf("pp: %d stage ranges for %d virtual stages", len(stageRanges), K)
	}
	at := 0
	for k, r := range stageRanges {
		if r[0] != at || r[1] <= r[0] {
			return nil, fmt.Errorf("pp: stage range %d is [%d,%d), want a non-empty range starting at %d", k, r[0], r[1], at)
		}
		at = r[1]
	}
	if at != len(ref) {
		return nil, fmt.Errorf("pp: stage ranges cover %d blocks, reference stack has %d", at, len(ref))
	}
	n := l.Ranks()
	if len(m.Devices) < n {
		return nil, fmt.Errorf("pp: layout needs %d devices, machine has %d", n, len(m.Devices))
	}

	inner := l.Inner()
	innerN := inner.Ranks()
	stageGroups := make([][]*core.Groups, l.PP)
	for p := 0; p < l.PP; p++ {
		gs, err := core.BuildGroupsOver(inner, m.Devices[p*innerN:(p+1)*innerN])
		if err != nil {
			return nil, err
		}
		stageGroups[p] = gs
	}

	// One point-to-point group per (adjacent-stage link, direction,
	// inner rank): fwd[s][r] is stage s → (s+1) mod PP, bwd[s][r] the
	// reverse. The wrap link exists only under interleaving, where the
	// virtual-stage ring closes.
	fwd := make([][]*comm.Group, l.PP)
	bwd := make([][]*comm.Group, l.PP)
	for s := 0; s < l.PP; s++ {
		next := (s + 1) % l.PP
		if l.PP == 1 || (s == l.PP-1 && chunks == 1) {
			continue
		}
		fwd[s] = make([]*comm.Group, innerN)
		bwd[s] = make([]*comm.Group, innerN)
		for r := 0; r < innerN; r++ {
			up := m.Devices[s*innerN+r]
			down := m.Devices[next*innerN+r]
			fwd[s][r] = comm.NewGroup([]*cluster.Device{up, down})
			bwd[s][r] = comm.NewGroup([]*cluster.Device{down, up})
		}
	}

	engines := make([]*Engine, n)
	for rank := 0; rank < n; rank++ {
		c := l.CoordOf(rank)
		r3 := inner.RankOf(core.Coord{T: c.T, F: c.F, D: c.D})
		e := &Engine{
			Rank:           rank,
			Coord:          c,
			Layout:         l,
			ChunksPerStage: chunks,
			StageRanges:    stageRanges,
			Device:         m.Devices[rank],
			pool:           comm.NewBufPool(),
		}
		for ch := 0; ch < chunks; ch++ {
			rng := stageRanges[ch*l.PP+c.P]
			ce, err := core.NewEngine(r3, inner, stageGroups[c.P][r3], ref[rng[0]:rng[1]], opts, m.Devices[rank])
			if err != nil {
				return nil, err
			}
			e.Stage = append(e.Stage, ce)
		}
		if prev := (c.P - 1 + l.PP) % l.PP; fwd[prev] != nil {
			e.fwdIn = fwd[prev][r3]
			e.bwdOut = bwd[prev][r3]
		}
		if fwd[c.P] != nil {
			e.fwdOut = fwd[c.P][r3]
			e.bwdIn = bwd[c.P][r3]
		}
		engines[rank] = e
	}
	return engines, nil
}

// StepIO supplies one rank's data plane for a step. Shape is the
// micro-batch activation shape every stage exchanges (e.g.
// [1, tokens, dim]); Input is consulted only on first-virtual-stage
// ranks, LossGrad only on last-virtual-stage ranks, and OnMicroGrads
// (optional) fires after each micro-batch's backward so the caller
// can accumulate Stage[chunk].Chunks() gradients — invoked in
// ascending micro order per chunk, matching the reference
// accumulation order bit for bit.
type StepIO struct {
	Shape        []int
	Input        func(mu int) *tensor.Tensor
	LossGrad     func(mu int, y *tensor.Tensor) (float64, *tensor.Tensor)
	OnMicroGrads func(chunk, mu int)
}

// pendingSend is an in-flight cross-stage transfer: the handle plus
// the pooled staging copy the rendezvous will read.
type pendingSend struct {
	h   comm.Handle
	buf []float32
}

// RunStep executes one optimizer step's worth of micro-batches
// through this rank's schedule slots. All ranks of the grid must call
// RunStep concurrently with the same kind and micros (SPMD). Sends
// are posted asynchronously at production and drained at the end of
// the step, so downstream transfer overlaps this stage's remaining
// compute; receives block at consumption. The returned loss is the
// sum over micro-batches on last-virtual-stage ranks and 0 elsewhere.
func (e *Engine) RunStep(kind ScheduleKind, micros int, io StepIO) (float64, error) {
	S, v := e.Layout.PP, e.ChunksPerStage
	K := S * v
	scheds, err := ScheduleFor(kind, S, v, micros)
	if err != nil {
		return 0, err
	}
	n := 1
	for _, d := range io.Shape {
		n *= d
	}
	if n <= 0 {
		return 0, fmt.Errorf("pp: bad step shape %v", io.Shape)
	}

	savedIn := make([][]*tensor.Tensor, v) // stage inputs per (chunk, micro)
	savedBuf := make([][][]float32, v)     // pooled recv copies backing savedIn
	var localFwd, localBwd [][][]float32   // PP=1 hand-off between chunks
	lastFwd := make([]int, v)              // most recent forward micro per chunk
	lastY := make([]*tensor.Tensor, v)     // its output
	for c := 0; c < v; c++ {
		savedIn[c] = make([]*tensor.Tensor, micros)
		savedBuf[c] = make([][]float32, micros)
		lastFwd[c] = -1
	}
	if S == 1 && v > 1 {
		localFwd = make([][][]float32, v)
		localBwd = make([][][]float32, v)
		for c := 0; c < v; c++ {
			localFwd[c] = make([][]float32, micros)
			localBwd[c] = make([][]float32, micros)
		}
	}
	var sends []pendingSend
	var lossSum float64

	for _, op := range scheds[e.Coord.P] {
		c, mu := op.Chunk, op.Micro
		k := c*S + e.Coord.P // virtual stage index
		switch op.Kind {
		case Fwd:
			var x *tensor.Tensor
			switch {
			case k == 0:
				x = io.Input(mu)
			case S == 1:
				buf := localFwd[c][mu]
				localFwd[c][mu] = nil
				savedBuf[c][mu] = buf
				x = tensor.FromSlice(buf, io.Shape...)
			default:
				buf := e.pool.Get(n)
				e.fwdIn.IRecv(1, buf).Wait()
				savedBuf[c][mu] = buf
				x = tensor.FromSlice(buf, io.Shape...)
			}
			savedIn[c][mu] = x
			y, err := e.Stage[c].Forward(x)
			if err != nil {
				return 0, err
			}
			lastFwd[c], lastY[c] = mu, y
			if k < K-1 {
				buf := e.pool.Get(n)
				copy(buf, y.Data())
				if S == 1 {
					localFwd[c+1][mu] = buf
				} else {
					sends = append(sends, pendingSend{e.fwdOut.ISend(0, buf), buf})
				}
			}
		case Bwd:
			if lastFwd[c] != mu {
				// Later micro-batches clobbered the chunk's module caches:
				// re-run the stage forward for real (re-gathers, TP
				// reductions, compute all charged) to restore them —
				// that is the recompute 1F1B actually pays on non-final
				// stages.
				y, err := e.Stage[c].Forward(savedIn[c][mu])
				if err != nil {
					return 0, err
				}
				lastFwd[c], lastY[c] = mu, y
				e.Stage[c].NoteRecomputed()
			}
			var dy *tensor.Tensor
			var gbuf []float32
			switch {
			case k == K-1:
				loss, g := io.LossGrad(mu, lastY[c])
				lossSum += loss
				dy = g
			case S == 1:
				gbuf = localBwd[c][mu]
				localBwd[c][mu] = nil
				dy = tensor.FromSlice(gbuf, io.Shape...)
			default:
				gbuf = e.pool.Get(n)
				e.bwdIn.IRecv(1, gbuf).Wait()
				dy = tensor.FromSlice(gbuf, io.Shape...)
			}
			dx, err := e.Stage[c].Backward(dy)
			if err != nil {
				return 0, err
			}
			if gbuf != nil {
				e.pool.Put(gbuf)
			}
			if io.OnMicroGrads != nil {
				io.OnMicroGrads(c, mu)
			}
			if k > 0 {
				buf := e.pool.Get(n)
				copy(buf, dx.Data())
				if S == 1 {
					localBwd[c-1][mu] = buf
				} else {
					sends = append(sends, pendingSend{e.bwdOut.ISend(0, buf), buf})
				}
			}
			if savedBuf[c][mu] != nil {
				e.pool.Put(savedBuf[c][mu])
				savedBuf[c][mu] = nil
			}
			savedIn[c][mu] = nil
		}
	}
	for _, s := range sends {
		s.h.Wait()
		e.pool.Put(s.buf)
	}
	return lossSum, nil
}

// Chunks returns the rank-owned parameter chunks of every virtual
// chunk engine, concatenated in chunk order — the optimizer state of
// this rank, in the same per-block order the stage ranges induce.
func (e *Engine) Chunks() []*nn.Param {
	var out []*nn.Param
	for _, ce := range e.Stage {
		out = append(out, ce.Chunks()...)
	}
	return out
}

// ExportChunks copies out the rank-owned chunk weights of every
// virtual chunk engine, concatenated in chunk order (aligned with
// Chunks and LogicalFlatLens).
func (e *Engine) ExportChunks() [][]float32 {
	var out [][]float32
	for _, ce := range e.Stage {
		out = append(out, ce.ExportChunks()...)
	}
	return out
}

// ImportChunks restores chunks written by ExportChunks (possibly
// resharded by the checkpoint layer), split back across the virtual
// chunk engines.
func (e *Engine) ImportChunks(chunks [][]float32) {
	off := 0
	for _, ce := range e.Stage {
		n := len(ce.Chunks())
		ce.ImportChunks(chunks[off : off+n])
		off += n
	}
	if off != len(chunks) {
		panic(fmt.Sprintf("pp: ImportChunks got %d chunks, engines hold %d", len(chunks), off))
	}
}

// LogicalFlatLens concatenates the per-chunk logical flat lengths in
// chunk order (what a stage's shard records in the manifest).
func (e *Engine) LogicalFlatLens() []int {
	var out []int
	for _, ce := range e.Stage {
		out = append(out, ce.LogicalFlatLens()...)
	}
	return out
}

// PoisonComm aborts every communicator this rank may block on: the
// inner 3D groups of each chunk engine plus the four pipeline link
// groups, so a killed stage's peers unwind with comm.Poisoned instead
// of waiting forever on a send that will never rendezvous.
func (e *Engine) PoisonComm() {
	for _, ce := range e.Stage {
		ce.PoisonComm()
	}
	for _, g := range []*comm.Group{e.fwdIn, e.fwdOut, e.bwdIn, e.bwdOut} {
		if g != nil {
			g.Poison()
		}
	}
}
