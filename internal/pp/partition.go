package pp

import "fmt"

// Partition cuts per-block costs into `stages` contiguous, non-empty
// ranges minimizing the maximum stage cost — the balanced-FLOPs cut.
// Among all minimizing partitions the result is deterministic: each
// stage takes the smallest end index that still admits an optimal
// completion, so the cut vector is lexicographically smallest and
// identical on every rank (SPMD construction depends on it).
func Partition(cost []int64, stages int) ([][2]int, error) {
	n := len(cost)
	if stages < 1 {
		return nil, fmt.Errorf("pp: need at least one stage, got %d", stages)
	}
	if n < stages {
		return nil, fmt.Errorf("pp: cannot cut %d blocks into %d non-empty stages", n, stages)
	}
	for i, c := range cost {
		if c < 0 {
			return nil, fmt.Errorf("pp: negative cost %d at block %d", c, i)
		}
	}
	// Binary-search the optimal bottleneck M between the largest single
	// block and the total, using the greedy piece-count feasibility
	// check.
	lo, hi := int64(0), int64(0)
	for _, c := range cost {
		hi += c
		if c > lo {
			lo = c
		}
	}
	feasible := func(m int64) bool { return minPieces(cost, m) <= stages }
	for lo < hi {
		mid := lo + (hi-lo)/2
		if feasible(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	opt := lo
	// Greedy left-to-right reconstruction with the earliest feasible
	// cut: stage s ends at the smallest e such that its cost fits under
	// opt and the suffix still splits into the remaining stages.
	out := make([][2]int, 0, stages)
	start := 0
	for s := 0; s < stages; s++ {
		remaining := stages - s - 1
		if remaining == 0 {
			out = append(out, [2]int{start, n})
			break
		}
		end := start + 1
		var sum int64 = cost[start]
		for {
			suffix := cost[end:]
			if sum <= opt && len(suffix) >= remaining && minPieces(suffix, opt) <= remaining {
				break
			}
			sum += cost[end]
			end++
		}
		out = append(out, [2]int{start, end})
		start = end
	}
	return out, nil
}

// minPieces is the greedy minimum number of contiguous pieces with
// per-piece sum ≤ m (treating any single block > m as infeasible by
// returning a count larger than len(cost)).
func minPieces(cost []int64, m int64) int {
	pieces, cur := 1, int64(0)
	for _, c := range cost {
		if c > m {
			return len(cost) + 1
		}
		if cur+c > m {
			pieces++
			cur = 0
		}
		cur += c
	}
	return pieces
}

// UniformPartition is Partition for equal-cost blocks — the ViT case,
// where every transformer block prices identically — cutting count
// blocks into stages ranges with optimal bottleneck ⌈count/stages⌉.
// The earliest-cut tie-break keeps leading stages as small as
// optimality permits, which suits 1F1B: early stages hold the most
// in-flight micro-batches.
func UniformPartition(count, stages int) ([][2]int, error) {
	cost := make([]int64, count)
	for i := range cost {
		cost[i] = 1
	}
	return Partition(cost, stages)
}
