package pp

import "fmt"

// OpKind distinguishes the two slot types of a pipeline schedule.
type OpKind uint8

const (
	// Fwd runs one micro-batch forward through one virtual chunk.
	Fwd OpKind = iota
	// Bwd runs the matching backward (recomputing the forward first
	// when later micro-batches have clobbered the chunk's caches).
	Bwd
)

func (k OpKind) String() string {
	if k == Fwd {
		return "F"
	}
	return "B"
}

// Op is one slot of a stage's schedule: run Kind on virtual chunk
// Chunk for micro-batch Micro. Schedules are pure data — deterministic
// per-stage op lists — so the planner's instruction-level replay and
// the functional engine execute the identical sequence by
// construction.
type Op struct {
	Kind  OpKind
	Chunk int
	Micro int
}

// ScheduleKind selects the micro-batch schedule.
type ScheduleKind uint8

const (
	// Schedule1F1B is the one-forward-one-backward schedule: stage s
	// warms up with min(M, S−1−s) forwards, then alternates (forward,
	// backward) pairs in steady state, then drains the remaining
	// backwards. Backwards execute in ascending micro order on every
	// stage, which is what keeps gradient accumulation bit-identical to
	// the single-stage reference. Requires one chunk per stage.
	Schedule1F1B ScheduleKind = iota
	// ScheduleInterleaved is the interleaved virtual-stage placement:
	// each stage owns `chunks` non-adjacent model chunks (virtual stage
	// c·S+s lives on stage s), micro-batches stream depth-first through
	// all S·chunks virtual stages in a forward phase and drain back in
	// a reverse backward phase. Shorter per-virtual-stage transit
	// shrinks the warmup/cooldown bubble relative to a plain cut of the
	// same stack.
	ScheduleInterleaved
)

func (k ScheduleKind) String() string {
	if k == Schedule1F1B {
		return "1f1b"
	}
	return "interleaved"
}

// ScheduleFor builds the per-stage op lists for S stages × chunks
// virtual chunks × M micro-batches. Every stage's list is a
// deterministic pure function of (kind, S, chunks, M); the
// conformance suite proves each list gradient-equivalent to the
// single-stage reference, and the per-(link, direction) transfer
// orders the lists induce are ascending on both endpoints, which is
// what makes the rendezvous transport deadlock-free.
func ScheduleFor(kind ScheduleKind, stages, chunks, micros int) ([][]Op, error) {
	if stages < 1 || chunks < 1 || micros < 1 {
		return nil, fmt.Errorf("pp: schedule needs positive stages/chunks/micros, got %d/%d/%d", stages, chunks, micros)
	}
	switch kind {
	case Schedule1F1B:
		if chunks != 1 {
			return nil, fmt.Errorf("pp: 1F1B runs one chunk per stage, got %d", chunks)
		}
		return oneFOneB(stages, micros), nil
	case ScheduleInterleaved:
		return interleaved(stages, chunks, micros), nil
	}
	return nil, fmt.Errorf("pp: unknown schedule kind %d", kind)
}

// oneFOneB emits the classic 1F1B lists. Stage s of S:
//
//	warmup:   F_0 … F_{w−1}            with w = min(M, S−1−s)
//	steady:   (F_i, B_{i−w})           for i = w … M−1
//	cooldown: B_{M−w} … B_{M−1}
func oneFOneB(stages, micros int) [][]Op {
	out := make([][]Op, stages)
	for s := 0; s < stages; s++ {
		w := stages - 1 - s
		if w > micros {
			w = micros
		}
		ops := make([]Op, 0, 2*micros)
		for i := 0; i < w; i++ {
			ops = append(ops, Op{Fwd, 0, i})
		}
		for i := w; i < micros; i++ {
			ops = append(ops, Op{Fwd, 0, i}, Op{Bwd, 0, i - w})
		}
		for i := micros - w; i < micros; i++ {
			ops = append(ops, Op{Bwd, 0, i})
		}
		out[s] = ops
	}
	return out
}

// interleaved emits the virtual-stage lists: forwards for chunk 0
// through chunk v−1 (ascending micros within each), then backwards
// chunk v−1 down to chunk 0 — ascending micros within each chunk, so
// per-parameter accumulation order matches the reference.
func interleaved(stages, chunks, micros int) [][]Op {
	out := make([][]Op, stages)
	for s := 0; s < stages; s++ {
		ops := make([]Op, 0, 2*chunks*micros)
		for c := 0; c < chunks; c++ {
			for i := 0; i < micros; i++ {
				ops = append(ops, Op{Fwd, c, i})
			}
		}
		for c := chunks - 1; c >= 0; c-- {
			for i := 0; i < micros; i++ {
				ops = append(ops, Op{Bwd, c, i})
			}
		}
		out[s] = ops
	}
	return out
}
