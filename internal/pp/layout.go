// Package pp adds pipeline parallelism as a first-class fourth axis
// over the Hybrid-STOP engine: the transformer stack is partitioned
// into balanced-FLOPs stages (ROADMAP item 4, the last missing engine
// axis), each stage runs its own inner TP×FSDP×DDP grid from
// internal/core, and micro-batches stream through the stages under a
// 1F1B or interleaved virtual-stage schedule. Cross-stage activation
// and gradient transfers ride internal/comm's point-to-point
// send/recv handles — one dedicated two-rank group per (link,
// direction), posted asynchronously so stage compute overlaps the
// transfer — which keeps the whole 4D composition on the same SPMD
// rendezvous discipline (and the same poison/unwind fault machinery)
// as the 3D engine.
//
// Pipeline schedules are the most ordering-sensitive parallelism
// form: a 1F1B bug corrupts gradients silently instead of crashing.
// The package is therefore gated by a schedule-conformance layer
// (conformance_test.go): every schedule must produce losses and
// per-parameter gradients bit-identical to the single-stage
// reference, and PP=1 layouts must be bit-identical to the 3D engine.
package pp

import (
	"fmt"
	"strings"

	"orbit/internal/core"
)

// Layout describes the four orthogonal parallelism group sizes. The
// inner three axes mean exactly what they mean in core.Layout; PP is
// the number of pipeline stages the block stack is cut into.
type Layout struct {
	TP, PP, FSDP, DDP int
}

// Inner is the per-stage 3D grid: every pipeline stage runs one.
func (l Layout) Inner() core.Layout {
	return core.Layout{TP: l.TP, FSDP: l.FSDP, DDP: l.DDP}
}

// Ranks returns the total rank count TP×PP×FSDP×DDP.
func (l Layout) Ranks() int { return l.TP * l.PP * l.FSDP * l.DDP }

// Validate reports impossible layouts.
func (l Layout) Validate() error {
	if l.TP < 1 || l.PP < 1 || l.FSDP < 1 || l.DDP < 1 {
		return fmt.Errorf("pp: group sizes must be positive, got %+v", l)
	}
	return nil
}

// Coord locates a rank on the 4D grid.
type Coord struct {
	T, P, F, D int
}

// RankOf converts grid coordinates to a global rank. The stage index
// is slowest-varying, so each stage occupies a contiguous window of
// devices whose interior ordering is exactly core.Layout's — a PP=1
// layout therefore maps ranks to devices identically to the 3D
// engine, and pipeline neighbours sit in adjacent windows (cross-node
// for multi-node stages, matching how real pipelines span nodes).
func (l Layout) RankOf(c Coord) int {
	return ((c.P*l.DDP+c.D)*l.FSDP+c.F)*l.TP + c.T
}

// CoordOf inverts RankOf.
func (l Layout) CoordOf(rank int) Coord {
	inner := l.TP * l.FSDP * l.DDP
	c3 := l.Inner().CoordOf(rank % inner)
	return Coord{T: c3.T, P: rank / inner, F: c3.F, D: c3.D}
}

// ParseLayout parses a -layout flag value: either the 3-field
// TPxFSDPxDDP form (PP=1, today's layouts unchanged) or the 4-field
// TPxPPxFSDPxDDP form.
func ParseLayout(spec string) (Layout, error) {
	parts := strings.Split(strings.ToLower(strings.TrimSpace(spec)), "x")
	vals := make([]int, 0, len(parts))
	for _, p := range parts {
		var v int
		if _, err := fmt.Sscanf(p, "%d", &v); err != nil {
			return Layout{}, fmt.Errorf("pp: bad layout %q (want TPxFSDPxDDP or TPxPPxFSDPxDDP)", spec)
		}
		vals = append(vals, v)
	}
	var l Layout
	switch len(vals) {
	case 3:
		l = Layout{TP: vals[0], PP: 1, FSDP: vals[1], DDP: vals[2]}
	case 4:
		l = Layout{TP: vals[0], PP: vals[1], FSDP: vals[2], DDP: vals[3]}
	default:
		return Layout{}, fmt.Errorf("pp: bad layout %q (want TPxFSDPxDDP or TPxPPxFSDPxDDP)", spec)
	}
	if err := l.Validate(); err != nil {
		return Layout{}, err
	}
	return l, nil
}

// String renders the 4-field flag form.
func (l Layout) String() string {
	return fmt.Sprintf("%dx%dx%dx%d", l.TP, l.PP, l.FSDP, l.DDP)
}
