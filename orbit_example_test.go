package orbit_test

// The runnable documentation: these Example functions are the README
// quickstart and the auto-planner usage, compiled and
// output-asserted by `go test` (CI runs them with -count=2, so an
// example that leaks state — files, globals — fails the second pass).
// Outputs print layouts, counts, and booleans rather than raw float
// losses so the assertions hold on every architecture.

import (
	"fmt"
	"log"
	"os"

	orbit "orbit"
)

// Example_quickstart is the README quickstart: build a small ORBIT
// model, pre-train it on the synthetic CMIP6-like corpus, and check
// it learns.
func Example_quickstart() {
	vars := orbit.RegistrySmall()
	const height, width = 16, 32
	corpus := orbit.NewPretrainCorpus(vars, height, width, 128, 4)
	cfg := orbit.TinyConfig(len(vars), height, width)
	tc := orbit.DefaultTrainConfig()
	tc.TotalSteps = 12
	model, curve, err := orbit.Pretrain(cfg, tc, corpus, 12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("channels: %d\n", len(vars))
	fmt.Printf("parameters > 10k: %v\n", model.NumParams() > 10_000)
	fmt.Printf("wMSE decreased over 12 steps: %v\n",
		curve[len(curve)-1].Loss < curve[0].Loss)
	// Output:
	// channels: 8
	// parameters > 10k: true
	// wMSE decreased over 12 steps: true
}

// Example_bestPlan asks the parallelism auto-planner for the fastest
// Hybrid-STOP layout and tuning knobs on a 16-GPU simulated cluster.
// The cluster's compute throughput is scaled down so the toy-sized
// functional workload sees a production compute-to-communication
// ratio (see plan.ScaledShape).
func Example_bestPlan() {
	w := orbit.PlanWorkload{
		Dim: 32, Heads: 4, Layers: 3, Tokens: 16, QKNorm: true,
		GlobalBatch: 64,
		Opts:        orbit.DefaultOptions(),
	}
	shape := orbit.ScaledPlanShape(2, 1e-3) // 2 nodes x 8 GPUs
	best, err := orbit.BestPlan(w, shape, orbit.PlanConstraints{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("layout: TP=%d FSDP=%d DDP=%d\n", best.Layout.TP, best.Layout.FSDP, best.Layout.DDP)
	fmt.Printf("knobs: prefetch depth %d, DDP bucket %d KiB, %d micro-batches\n",
		best.Knobs.PrefetchDepth, best.Knobs.DDPBucketBytes>>10, best.Knobs.MicroBatches)
	// The prediction is machine-readable: best.Explain() is JSON with
	// step time, per-phase communication waits, and both memory models.
	fmt.Printf("prediction is feasible: %v\n", !best.Pred.OOM)
	// Output:
	// layout: TP=1 FSDP=8 DDP=2
	// knobs: prefetch depth 2, DDP bucket 1024 KiB, 4 micro-batches
	// prediction is feasible: true
}

// Example_elasticAutoPlan runs elastic distributed training with the
// planner in the loop: a node dies mid-run, the job reloads the
// newest sharded checkpoint, and the auto-planner (TP pinned — the
// checkpoint cannot reshard across a TP change) picks the layout for
// the surviving machine.
func Example_elasticAutoPlan() {
	dir, err := os.MkdirTemp("", "orbit-elastic")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	cfg := orbit.ElasticConfig{
		Layout: orbit.Layout{TP: 2, FSDP: 4, DDP: 2}, // 16 ranks on 2 nodes
		Nodes:  2,
		Dim:    8, Heads: 2, Layers: 2, Tokens: 5,
		GlobalBatch: 8, LR: 1e-2, MinLR: 1e-3, WarmupSteps: 2,
		TotalSteps: 12, Seed: 3, DataSeed: 7,
		CkptDir: dir, CkptEvery: 4,
		AutoPlan: true,
		Opts:     orbit.DefaultOptions(),
	}
	inj := orbit.NewFaultInjector()
	inj.KillNodeAtStep(1, 9)
	res, err := orbit.RunElastic(cfg, inj)
	if err != nil {
		log.Fatal(err)
	}
	replanned := false
	for _, ev := range res.Events {
		if ev.Kind == "plan" {
			replanned = true
		}
	}
	fmt.Printf("rebuilds: %d\n", res.Rebuilds)
	fmt.Printf("planner consulted on rebuild: %v\n", replanned)
	fmt.Printf("TP preserved: %v\n", res.FinalLayout.TP == 2)
	fmt.Printf("survivor fits one node: %v\n", res.FinalLayout.Ranks() <= 8)
	fmt.Printf("loss decreased: %v\n", res.Losses[11] < res.Losses[0])
	// Output:
	// rebuilds: 1
	// planner consulted on rebuild: true
	// TP preserved: true
	// survivor fits one node: true
	// loss decreased: true
}
